//! Power/energy targets: the `energy` perf/W companion to Figures 4–5
//! (per-design EPI decomposition plus a DRAM-generation sweep) and the
//! `configurator` fleet sizing tool.
//!
//! Both targets consume the memsim bank-state residency tap through
//! the calibrated [`ResidencyModel`]: DRAM energy is integrated from
//! time-in-state (active / precharged / refreshing / self-refresh)
//! plus per-command edge energies, not from flat per-op constants.

use crate::context::{say, Ctx};
use crate::node_figures::model;
use dram::organization::ModuleOrganization;
use dram::timing::TimingParams;
use energy::{CpuPowerParams, ResidencyBreakdown, ResidencyInput, ResidencyModel};
use hetero_dmr::MemoryDesign;
use memsim::config::{ChannelMode, HierarchyConfig};
use memsim::{NodeSim, SimResult};
use telemetry::slug;
use workloads::{Suite, TraceGen};

/// One DRAM generation the sweep and the configurator evaluate: a
/// shipped timing preset, its calibrated residency model, and the
/// module geometry it comes packaged in.
struct Generation {
    label: &'static str,
    timing: TimingParams,
    model: ResidencyModel,
    organization: ModuleOrganization,
    /// MRDIMMs multiplex four physical ranks behind one buffer, so a
    /// channel carries one quad-rank module instead of two dual-rank
    /// ones (same ranks per channel, half the sockets).
    mrdimm: bool,
}

/// The five generations, oldest first. DDR4-3200 (index 1) is the
/// paper's baseline configuration and the sweep's normalization point.
fn generations() -> [Generation; 5] {
    [
        Generation {
            label: "DDR4-2400",
            timing: TimingParams::ddr4_2400_spec(),
            model: ResidencyModel::ddr4_2400(),
            organization: ModuleOrganization::ddr4_2400_9cpr_dual_rank(),
            mrdimm: false,
        },
        Generation {
            label: "DDR4-3200",
            timing: TimingParams::ddr4_3200_spec(),
            model: ResidencyModel::ddr4_3200(),
            organization: ModuleOrganization::ddr4_3200_9cpr_dual_rank(),
            mrdimm: false,
        },
        Generation {
            label: "DDR5-4800",
            timing: TimingParams::ddr5_4800_spec(),
            model: ResidencyModel::ddr5_4800(),
            organization: ModuleOrganization::ddr5_4800_10cpr_dual_rank(),
            mrdimm: false,
        },
        Generation {
            label: "DDR5-6400",
            timing: TimingParams::ddr5_6400_spec(),
            model: ResidencyModel::ddr5_6400(),
            organization: ModuleOrganization::ddr5_6400_10cpr_dual_rank(),
            mrdimm: false,
        },
        Generation {
            label: "MRDIMM-8800",
            timing: TimingParams::mrdimm_8800_spec(),
            model: ResidencyModel::mrdimm_8800(),
            organization: ModuleOrganization::mrdimm_8800_10cpr_quad_rank(),
            mrdimm: true,
        },
    ]
}

/// The node a generation runs in: Hierarchy1, with the MRDIMM's
/// quad-rank single-socket channel substituted where applicable (rank
/// count per channel stays four either way, so bank-level parallelism
/// is held constant across the sweep).
fn hierarchy_for(gen: &Generation) -> HierarchyConfig {
    if gen.mrdimm {
        HierarchyConfig::builder("Hierarchy1-MRDIMM")
            .modules_per_channel(1)
            .ranks_per_module(4)
            .build()
    } else {
        HierarchyConfig::hierarchy1()
    }
}

/// Converts a run's residency tap and command counts into the
/// residency model's input.
fn residency_input(result: &SimResult, banks_per_rank: u32) -> ResidencyInput {
    ResidencyInput {
        active_bank_ps: result.residency.active_bank_ps,
        precharged_bank_ps: result.residency.precharged_bank_ps(),
        refresh_bank_ps: result.residency.refresh_bank_ps,
        self_refresh_bank_ps: result.residency.self_refresh_bank_ps,
        banks_per_rank,
        activates: result.controller.activates,
        reads: result.controller.reads,
        writes: result.controller.writes,
        broadcast_extra_cells: result.controller.broadcast_extra_cells,
        refreshes: result.controller.refreshes,
    }
}

/// Simulates `suite` on `gen`'s node at specification timing and
/// returns the run plus its residency-model energy.
fn run_generation(ctx: &Ctx, gen: &Generation, suite: Suite) -> (SimResult, ResidencyBreakdown) {
    let h = hierarchy_for(gen);
    let mode = ChannelMode::builder()
        .timings(gen.timing)
        .build()
        .expect("shipped generation timings are coherent");
    let mut node = NodeSim::new(h, mode);
    if let Some(scope) =
        ctx.metrics_scope(&format!("sweep.{}.{}", slug(gen.label), slug(suite.name())))
    {
        node.attach_telemetry(&scope);
    }
    let streams: Vec<TraceGen> = (0..h.cores)
        .map(|i| {
            TraceGen::new(
                suite.params(),
                ctx.seed.wrapping_add(i as u64),
                ctx.ops_per_core,
            )
        })
        .collect();
    let warm = node.l3_blocks_per_core();
    for (i, stream) in streams.iter().enumerate() {
        node.prewarm_core(i, stream.warmup_blocks(warm, suite.params().write_fraction));
    }
    let result = node.run(streams);
    let input = residency_input(&result, h.memory.banks_per_rank as u32);
    let breakdown = gen.model.energy(&input);
    (result, breakdown)
}

/// Per-design (or per-generation) energy totals accumulated across
/// suites.
#[derive(Debug, Clone, Copy, Default)]
struct EnergyTotals {
    background_j: f64,
    activate_j: f64,
    burst_j: f64,
    refresh_j: f64,
    cpu_j: f64,
    instructions: u64,
    secs: f64,
}

impl EnergyTotals {
    fn add(&mut self, b: &ResidencyBreakdown, cpu: &CpuPowerParams, result: &SimResult) {
        // The four components must reconstruct the model's total: the
        // decomposition is the deliverable, so any drift is a bug.
        let sum = b.background_j + b.activate_j + b.burst_j + b.refresh_j;
        assert!(
            (b.total_j() - sum).abs() < 1e-9,
            "EPI components diverge from total: {} vs {sum}",
            b.total_j()
        );
        let secs = energy::ps_to_s(result.exec_time_ps);
        self.background_j += b.background_j;
        self.activate_j += b.activate_j;
        self.burst_j += b.burst_j;
        self.refresh_j += b.refresh_j;
        self.cpu_j += cpu.energy_j(secs, result.instructions);
        self.instructions += result.instructions;
        self.secs += secs;
    }

    fn dram_j(&self) -> f64 {
        self.background_j + self.activate_j + self.burst_j + self.refresh_j
    }

    /// Energy-per-instruction of one component, nanojoules.
    fn epi_nj(&self, component_j: f64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            component_j / self.instructions as f64 * 1e9
        }
    }

    /// Instructions per second per watt (CPU + DRAM), the perf/W
    /// figure of merit.
    fn perf_per_watt(&self) -> f64 {
        let watts = (self.dram_j() + self.cpu_j) / self.secs.max(f64::MIN_POSITIVE);
        if watts <= 0.0 || self.secs <= 0.0 {
            0.0
        } else {
            (self.instructions as f64 / self.secs) / watts
        }
    }
}

/// The `energy` target: per-design EPI decomposition under the
/// state-residency model (the perf/W companion to Figure 5's speedups)
/// and a DRAM-generation sweep at specification timing.
pub fn energy(ctx: &mut Ctx) {
    per_design(ctx);
    say!(ctx, "");
    generation_sweep(ctx);
}

/// Part one: the Figure 5 / Figure 13 designs on Hierarchy1 DDR4-3200,
/// averaged across the six suites, itemized by energy mechanism.
fn per_design(ctx: &mut Ctx) {
    let h = HierarchyConfig::hierarchy1();
    let m = model(ctx, h);
    let rm = ResidencyModel::ddr4_3200();
    let cpu = CpuPowerParams::default();
    let designs = [
        MemoryDesign::CommercialBaseline,
        MemoryDesign::ExploitLatency,
        MemoryDesign::ExploitFrequency,
        MemoryDesign::ExploitFreqLat,
        MemoryDesign::HeteroDmr { margin_mts: 800 },
    ];
    say!(
        ctx,
        "State-residency EPI by design ({}, DDR4-3200, nJ/instruction, six-suite totals):",
        h.name
    );
    say!(
        ctx,
        "{:<26} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "design",
        "backgnd",
        "activate",
        "burst",
        "refresh",
        "dram_epi",
        "cpu_epi",
        "perf/W"
    );
    let mut rows = vec![vec![
        "design".into(),
        "background_nj".into(),
        "activate_nj".into(),
        "burst_nj".into(),
        "refresh_nj".into(),
        "dram_epi_nj".into(),
        "cpu_epi_nj".into(),
        "perf_per_w_rel".into(),
    ]];
    let mut baseline_ppw = 0.0;
    for design in designs {
        let mut t = EnergyTotals::default();
        for suite in Suite::ALL {
            let result = m.run(design, suite);
            let input = residency_input(&result, h.memory.banks_per_rank as u32);
            t.add(&rm.energy(&input), &cpu, &result);
        }
        let ppw = t.perf_per_watt();
        if design == MemoryDesign::CommercialBaseline {
            baseline_ppw = ppw;
        }
        let rel = ppw / baseline_ppw;
        say!(
            ctx,
            "{:<26} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>8.2} {:>7.3}x",
            design.name(),
            t.epi_nj(t.background_j),
            t.epi_nj(t.activate_j),
            t.epi_nj(t.burst_j),
            t.epi_nj(t.refresh_j),
            t.epi_nj(t.dram_j()),
            t.epi_nj(t.cpu_j),
            rel
        );
        let ds = slug(&design.name());
        ctx.summary(&format!("energy.{ds}.dram_epi_nj"), t.epi_nj(t.dram_j()));
        ctx.summary(&format!("energy.{ds}.perf_per_w_rel"), rel);
        if let Some(scope) = ctx.metrics_scope(&format!("design.{ds}")) {
            scope
                .gauge("background_epi_nj")
                .set_scaled(t.epi_nj(t.background_j));
            scope
                .gauge("activate_epi_nj")
                .set_scaled(t.epi_nj(t.activate_j));
            scope.gauge("burst_epi_nj").set_scaled(t.epi_nj(t.burst_j));
            scope
                .gauge("refresh_epi_nj")
                .set_scaled(t.epi_nj(t.refresh_j));
        }
        rows.push(vec![
            design.name(),
            format!("{:.4}", t.epi_nj(t.background_j)),
            format!("{:.4}", t.epi_nj(t.activate_j)),
            format!("{:.4}", t.epi_nj(t.burst_j)),
            format!("{:.4}", t.epi_nj(t.refresh_j)),
            format!("{:.4}", t.epi_nj(t.dram_j())),
            format!("{:.4}", t.epi_nj(t.cpu_j)),
            format!("{rel:.4}"),
        ]);
    }
    ctx.csv("energy_designs", &rows);
}

/// Part two: the DDR4 → DDR5 → MRDIMM generation sweep at
/// specification timing, six-suite totals, normalized to DDR4-3200.
fn generation_sweep(ctx: &mut Ctx) {
    say!(
        ctx,
        "Generation sweep (spec timing, six-suite totals, perf and perf/W vs DDR4-3200):"
    );
    say!(
        ctx,
        "{:<12} {:>6} {:>7} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "generation",
        "MT/s",
        "perf",
        "backgnd",
        "activate",
        "burst",
        "refresh",
        "dram_epi",
        "dram_W",
        "perf/W"
    );
    let mut rows = vec![vec![
        "generation".into(),
        "mts".into(),
        "perf_rel".into(),
        "background_nj".into(),
        "activate_nj".into(),
        "burst_nj".into(),
        "refresh_nj".into(),
        "dram_epi_nj".into(),
        "dram_w".into(),
        "perf_per_w_rel".into(),
    ]];
    let cpu = CpuPowerParams::default();
    let mut measured = Vec::new();
    for gen in &generations() {
        let mut t = EnergyTotals::default();
        for suite in Suite::ALL {
            let (result, breakdown) = run_generation(ctx, gen, suite);
            t.add(&breakdown, &cpu, &result);
        }
        measured.push((gen.label, gen.timing.data_rate.mts(), t));
    }
    let base = &measured[1].2; // DDR4-3200
    let base_ips = base.instructions as f64 / base.secs;
    let base_ppw = base.perf_per_watt();
    for (label, mts, t) in &measured {
        let perf_rel = (t.instructions as f64 / t.secs) / base_ips;
        let ppw_rel = t.perf_per_watt() / base_ppw;
        let dram_w = t.dram_j() / t.secs;
        say!(
            ctx,
            "{:<12} {:>6} {:>6.3}x {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>8.2} {:>7.3}x",
            label,
            mts,
            perf_rel,
            t.epi_nj(t.background_j),
            t.epi_nj(t.activate_j),
            t.epi_nj(t.burst_j),
            t.epi_nj(t.refresh_j),
            t.epi_nj(t.dram_j()),
            dram_w,
            ppw_rel
        );
        let gs = slug(label);
        ctx.summary(&format!("energy.sweep.{gs}.perf_rel"), perf_rel);
        ctx.summary(
            &format!("energy.sweep.{gs}.dram_epi_nj"),
            t.epi_nj(t.dram_j()),
        );
        ctx.summary(&format!("energy.sweep.{gs}.perf_per_w_rel"), ppw_rel);
        rows.push(vec![
            (*label).into(),
            format!("{mts}"),
            format!("{perf_rel:.4}"),
            format!("{:.4}", t.epi_nj(t.background_j)),
            format!("{:.4}", t.epi_nj(t.activate_j)),
            format!("{:.4}", t.epi_nj(t.burst_j)),
            format!("{:.4}", t.epi_nj(t.refresh_j)),
            format!("{:.4}", t.epi_nj(t.dram_j())),
            format!("{dram_w:.4}"),
            format!("{ppw_rel:.4}"),
        ]);
    }
    ctx.csv("energy_sweep", &rows);
}

/// What a server in the fleet must satisfy (the configurator's fixed
/// requirement set).
struct ServerRequirements {
    /// DRAM power budget per server, watts.
    power_budget_w: f64,
    /// Minimum interface data rate, MT/s.
    min_data_rate_mts: u32,
    /// Memory capacity floor per server, gigabytes.
    total_capacity_gb: u32,
    /// Workload the per-DIMM power is measured under.
    workload: Suite,
}

/// One candidate configuration: a generation sized to the requirements
/// with measured power and feasibility flags.
struct ServerConfiguration {
    label: &'static str,
    data_rate_mts: u32,
    dimms_per_server: u32,
    capacity_gb: u32,
    power_per_dimm_w: f64,
    server_power_w: f64,
    meets_power: bool,
    meets_performance: bool,
    meets_capacity: bool,
    /// Instructions/s per DRAM watt at server scale — higher is better.
    score: f64,
}

impl ServerConfiguration {
    fn feasible(&self) -> bool {
        self.meets_power && self.meets_performance && self.meets_capacity
    }
}

/// Memory channels a server board carries (16 = 2 sockets × 8
/// channels, the common DDR4/DDR5 server shape).
const CHANNELS_PER_SERVER: u32 = 16;

/// The `configurator` target: sizes each DRAM generation against a
/// fleet requirement set, measures its per-DIMM power from simulation,
/// and ranks the feasible configurations by perf per DRAM watt.
pub fn configurator(ctx: &mut Ctx) {
    let req = ServerRequirements {
        power_budget_w: 90.0,
        min_data_rate_mts: 3200,
        total_capacity_gb: 512,
        workload: Suite::Hpcg,
    };
    say!(
        ctx,
        "Fleet configurator: {} GB/server, >= {} MT/s, DRAM budget {:.0} W, workload {}",
        req.total_capacity_gb,
        req.min_data_rate_mts,
        req.power_budget_w,
        req.workload
    );
    let mut configs = Vec::new();
    for gen in &generations() {
        let (result, breakdown) = run_generation(ctx, gen, req.workload);
        let h = hierarchy_for(gen);
        let secs = energy::ps_to_s(result.exec_time_ps);
        let sim_modules = (h.memory.channels * h.memory.modules_per_channel) as f64;
        let power_per_dimm_w = breakdown.total_j() / secs / sim_modules;
        let slots = CHANNELS_PER_SERVER * h.memory.modules_per_channel as u32;
        let module_gb = gen.organization.capacity_gb();
        let dimms_per_server = req.total_capacity_gb.div_ceil(module_gb).max(1);
        let server_power_w = dimms_per_server as f64 * power_per_dimm_w;
        // Perf proxy: the measured single-channel throughput scaled to
        // the server's channel count (channels are the unit the sweep
        // holds constant, so scaling is linear).
        let server_perf = result.instructions_per_ns() * 1e9 * CHANNELS_PER_SERVER as f64
            / h.memory.channels as f64;
        configs.push(ServerConfiguration {
            label: gen.label,
            data_rate_mts: gen.timing.data_rate.mts(),
            dimms_per_server,
            capacity_gb: dimms_per_server * module_gb,
            power_per_dimm_w,
            server_power_w,
            meets_power: server_power_w <= req.power_budget_w,
            meets_performance: gen.timing.data_rate.mts() >= req.min_data_rate_mts,
            meets_capacity: dimms_per_server <= slots,
            score: server_perf / server_power_w,
        });
    }
    // Feasible configs first, best score first; infeasible ones keep
    // their generation order at the bottom (stable sort).
    configs.sort_by(|a, b| {
        b.feasible().cmp(&a.feasible()).then(
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    say!(
        ctx,
        "{:<5} {:<12} {:>6} {:>6} {:>7} {:>7} {:>8} {:>6} {:>5} {:>5} {:>12}",
        "rank",
        "generation",
        "MT/s",
        "DIMMs",
        "GB",
        "W/DIMM",
        "server_W",
        "power",
        "perf",
        "cap",
        "score(GI/s/W)"
    );
    let yn = |ok: bool| if ok { "yes" } else { "no" };
    let mut rows = vec![vec![
        "rank".into(),
        "generation".into(),
        "mts".into(),
        "dimms".into(),
        "capacity_gb".into(),
        "power_per_dimm_w".into(),
        "server_power_w".into(),
        "meets_power".into(),
        "meets_performance".into(),
        "meets_capacity".into(),
        "score".into(),
    ]];
    let mut feasible = 0u32;
    for (i, c) in configs.iter().enumerate() {
        let rank = if c.feasible() {
            feasible += 1;
            format!("#{feasible}")
        } else {
            "-".into()
        };
        // The score is instructions/s per watt; GI/s/W keeps it
        // readable.
        say!(
            ctx,
            "{:<5} {:<12} {:>6} {:>6} {:>7} {:>7.2} {:>8.2} {:>6} {:>5} {:>5} {:>12.3}",
            rank,
            c.label,
            c.data_rate_mts,
            c.dimms_per_server,
            c.capacity_gb,
            c.power_per_dimm_w,
            c.server_power_w,
            yn(c.meets_power),
            yn(c.meets_performance),
            yn(c.meets_capacity),
            c.score / 1e9
        );
        let gs = slug(c.label);
        ctx.summary(
            &format!("configurator.{gs}.score_gips_per_w"),
            c.score / 1e9,
        );
        rows.push(vec![
            format!("{}", i + 1),
            c.label.into(),
            format!("{}", c.data_rate_mts),
            format!("{}", c.dimms_per_server),
            format!("{}", c.capacity_gb),
            format!("{:.4}", c.power_per_dimm_w),
            format!("{:.4}", c.server_power_w),
            format!("{}", c.meets_power),
            format!("{}", c.meets_performance),
            format!("{}", c.meets_capacity),
            format!("{:.4}", c.score),
        ]);
    }
    assert!(
        feasible >= 3,
        "expected at least 3 feasible generations, got {feasible}"
    );
    say!(
        ctx,
        "{feasible} of {} configurations meet all requirements; best: {}",
        configs.len(),
        configs[0].label
    );
    ctx.summary("configurator.feasible", feasible as f64);
    ctx.csv("configurator", &rows);
}
