//! Node-level figures (5, 12, 13, 14, 15, 16), all driven by the
//! `hetero_dmr::NodeModel` evaluation engine.

use crate::context::{say, sayp, Ctx};
use energy::EnergyModel;
use hetero_dmr::emulation::EmulationInputs;
use hetero_dmr::monte_carlo::MonteCarlo;
use hetero_dmr::{EvalConfig, MemoryDesign, NodeModel, UsageBucket};
use margin::composition::SelectionPolicy;
use memsim::config::HierarchyConfig;
use workloads::utilization::{Cluster, UtilizationModel};
use workloads::Suite;

pub(crate) fn model(ctx: &Ctx, h: HierarchyConfig) -> NodeModel {
    let mut m = NodeModel::new(
        h,
        EvalConfig {
            ops_per_core: ctx.ops_per_core,
            seed: ctx.seed,
            windows: ctx.windows,
        },
    );
    m.set_shared_cache(ctx.model_cache);
    if let Some(scope) = ctx.metrics_scope(&format!("node.{}", telemetry::slug(h.name))) {
        m.set_metrics_scope(scope);
    }
    if let Some(t) = &ctx.tracer {
        m.set_trace(t);
    }
    m
}

/// Figure 5: real-system speedup from exploiting margins, per suite
/// and hierarchy.
pub fn fig5(ctx: &mut Ctx) {
    let mut rows = vec![vec![
        "hierarchy".into(),
        "suite".into(),
        "latency_margin".into(),
        "frequency_margin".into(),
        "freq_lat_margins".into(),
    ]];
    for h in HierarchyConfig::both() {
        let m = model(ctx, h);
        say!(ctx, "{} (speedup over manufacturer specification):", h.name);
        say!(
            ctx,
            "{:<10} {:>10} {:>10} {:>10}",
            "suite",
            "latency",
            "frequency",
            "freq+lat"
        );
        for suite in Suite::ALL {
            let lat = m.normalized(MemoryDesign::ExploitLatency, suite, UsageBucket::Low);
            let freq = m.normalized(MemoryDesign::ExploitFrequency, suite, UsageBucket::Low);
            let both = m.normalized(MemoryDesign::ExploitFreqLat, suite, UsageBucket::Low);
            say!(
                ctx,
                "{:<10} {:>9.3}x {:>9.3}x {:>9.3}x",
                suite.name(),
                lat,
                freq,
                both
            );
            rows.push(vec![
                h.name.into(),
                suite.name().into(),
                format!("{lat:.4}"),
                format!("{freq:.4}"),
                format!("{both:.4}"),
            ]);
        }
        let lat_avg = m.suite_average(MemoryDesign::ExploitLatency, UsageBucket::Low);
        let freq_avg = m.suite_average(MemoryDesign::ExploitFrequency, UsageBucket::Low);
        let both_avg = m.suite_average(MemoryDesign::ExploitFreqLat, UsageBucket::Low);
        say!(
            ctx,
            "average    {:>9.3}x {:>9.3}x {:>9.3}x   (paper freq+lat avg: 1.19x, Linpack 1.24x)",
            lat_avg,
            freq_avg,
            both_avg
        );
        let hs = telemetry::slug(h.name);
        ctx.summary(&format!("fig5.{hs}.latency_margin"), lat_avg);
        ctx.summary(&format!("fig5.{hs}.frequency_margin"), freq_avg);
        ctx.summary(&format!("fig5.{hs}.freq_lat_margins"), both_avg);
    }
    ctx.csv("fig5", &rows);
}

/// The designs in Figure 12's legend, per margin.
fn fig12_designs(margin: u32) -> [MemoryDesign; 3] {
    [
        MemoryDesign::Fmr,
        MemoryDesign::HeteroDmr { margin_mts: margin },
        MemoryDesign::HeteroDmrFmr { margin_mts: margin },
    ]
}

/// Under `--metrics`, drives the functional protocol engine through a
/// deterministic scenario so Figure 12's export also carries governor
/// and ECC telemetry (the timing simulator behind the figure models
/// protocol latencies but never decodes blocks): conventional fills,
/// replication activation, injected reads across the whole error-model
/// taxonomy, a write-mode round trip, and a persistent-fault remap.
fn protocol_exercise(ctx: &mut Ctx) {
    use ecc::ErrorModel;
    use hetero_dmr::protocol::HeteroDmrChannel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let scope = ctx.metrics_scope("protocol");
    if scope.is_none() && ctx.tracer.is_none() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x0F16_0012);
    let mut ch = HeteroDmrChannel::new(1 << 12);
    if let Some(scope) = &scope {
        ch.attach_telemetry(scope);
    }
    if let Some(t) = &ctx.tracer {
        ch.attach_trace(t);
    }
    for block in 0..64u64 {
        ch.write(block, &[block as u8; 64], 0).expect("spec write");
    }
    let mut t = ch.set_used_blocks(1 << 10, 0);
    // Fast reads with every out-of-spec error model: corrupt copies
    // are detected and recovered from the in-spec originals.
    for model in ErrorModel::ALL {
        for block in 0..8u64 {
            let (_, _, end) = ch
                .read(block, t, Some((&mut rng, model)))
                .expect("recoverable read");
            t = end;
        }
    }
    for block in 0..32u64 {
        let (_, _, end) = ch.read::<StdRng>(block, t, None).expect("clean read");
        t = end;
    }
    // A write-mode round trip (two mode switches).
    t = ch.begin_write_mode(t).expect("enter write mode");
    for block in 0..16u64 {
        ch.write(block, &[0xA5; 64], t).expect("broadcast write");
    }
    t = ch.begin_read_mode(t).expect("back to read mode");
    // A stuck cell in the copy module: recoveries, then a role remap
    // ends the churn.
    ch.inject_persistent_copy_fault(3);
    for _ in 0..6 {
        let (_, _, end) = ch.read::<StdRng>(3, t, None).expect("faulty read");
        t = end;
    }
}

/// Figure 12: normalized performance per design × usage bucket ×
/// margin × hierarchy, plus the usage-weighted `[0~100%]` bars and the
/// paper's headline margin-weighted average.
pub fn fig12(ctx: &mut Ctx) {
    protocol_exercise(ctx);
    let weights = UtilizationModel::for_cluster(Cluster::Grizzly).bucket_weights();
    let groups =
        MonteCarlo::default().node_groups(SelectionPolicy::MarginAware, ctx.trials, ctx.seed);
    let mut rows = vec![vec![
        "hierarchy".into(),
        "margin_mts".into(),
        "design".into(),
        "bucket".into(),
        "normalized_perf".into(),
    ]];
    let mut overall = Vec::new();
    for h in HierarchyConfig::both() {
        let m = model(ctx, h);
        for margin in [800u32, 600] {
            say!(
                ctx,
                "{} @ {:.1} GT/s margin:",
                h.name,
                margin as f64 / 1000.0
            );
            sayp!(ctx, "{:<24}", "design");
            for b in UsageBucket::ALL {
                sayp!(ctx, " {:>10}", b.label());
            }
            say!(ctx, " {:>10}", "[0~100%]");
            for design in fig12_designs(margin) {
                sayp!(ctx, "{:<24}", design.name());
                for b in UsageBucket::ALL {
                    let v = m.suite_average(design, b);
                    if h.name == "Hierarchy1"
                        && b == UsageBucket::Low
                        && design == (MemoryDesign::HeteroDmr { margin_mts: 800 })
                    {
                        ctx.summary("fig12.h1.hdmr800.low", v);
                    }
                    sayp!(ctx, " {:>9.3}x", v);
                    rows.push(vec![
                        h.name.into(),
                        margin.to_string(),
                        design.name(),
                        b.label().into(),
                        format!("{v:.4}"),
                    ]);
                }
                say!(ctx, " {:>9.3}x", m.usage_weighted(design, weights));
            }
        }
        let hdmr = m.margin_weighted(
            |mts| MemoryDesign::HeteroDmr { margin_mts: mts },
            &groups,
            weights,
        );
        let hf = m.margin_weighted(
            |mts| MemoryDesign::HeteroDmrFmr { margin_mts: mts },
            &groups,
            weights,
        );
        let fmr = m.usage_weighted(MemoryDesign::Fmr, weights);
        say!(ctx,
            "{}: margin+usage-weighted Hetero-DMR {:.3}x | FMR {:.3}x | Hetero-DMR+FMR {:.3}x (H+F/FMR = {:.3}x)",
            h.name,
            hdmr,
            fmr,
            hf,
            hf / fmr
        );
        overall.push(hdmr);
    }
    let headline = overall.iter().sum::<f64>() / overall.len() as f64;
    say!(ctx,
        "HEADLINE: Hetero-DMR node-level improvement, weighted across margins, usage, and hierarchies: {:.1}% (paper: 18%)",
        (headline - 1.0) * 100.0
    );
    ctx.csv("fig12", &rows);
}

/// Figure 13: system-level energy per instruction, normalized.
pub fn fig13(ctx: &mut Ctx) {
    let em = EnergyModel::default();
    let mut rows = vec![vec![
        "hierarchy".into(),
        "design".into(),
        "normalized_epi".into(),
    ]];
    for h in HierarchyConfig::both() {
        let m = model(ctx, h);
        say!(
            ctx,
            "{} (EPI normalized to Commercial Baseline, [0~25%) usage):",
            h.name
        );
        for design in [
            MemoryDesign::Fmr,
            MemoryDesign::HeteroDmr { margin_mts: 800 },
            MemoryDesign::HeteroDmrFmr { margin_mts: 800 },
        ] {
            let mut epi_ratio = 0.0;
            for suite in Suite::ALL {
                let base = m.energy(MemoryDesign::CommercialBaseline, suite, &em);
                let d = m.energy(design, suite, &em);
                epi_ratio += d.epi_nj() / base.epi_nj();
            }
            epi_ratio /= Suite::ALL.len() as f64;
            if h.name == "Hierarchy1" && matches!(design, MemoryDesign::HeteroDmr { .. }) {
                ctx.summary("fig13.h1.hdmr800.epi", epi_ratio);
            }
            say!(
                ctx,
                "  {:<24} {:>6.3} (paper: Hetero-DMR ~0.94)",
                design.name(),
                epi_ratio
            );
            rows.push(vec![
                h.name.into(),
                design.name(),
                format!("{epi_ratio:.4}"),
            ]);
        }
    }
    ctx.csv("fig13", &rows);
}

/// Figure 14: DRAM accesses per instruction, normalized to baseline.
pub fn fig14(ctx: &mut Ctx) {
    let m = model(ctx, HierarchyConfig::hierarchy1());
    let mut rows = vec![vec!["suite".into(), "normalized_accesses_per_instr".into()]];
    say!(
        ctx,
        "Hetero-DMR+FMR@0.8GT/s DRAM accesses/instruction vs baseline (Hierarchy1):"
    );
    let mut avg = 0.0;
    for suite in Suite::ALL {
        let base = m.run(MemoryDesign::CommercialBaseline, suite);
        let hf = m.run(MemoryDesign::HeteroDmrFmr { margin_mts: 800 }, suite);
        let ratio = hf.dram_accesses_per_instruction() / base.dram_accesses_per_instruction();
        say!(ctx, "  {:<10} {:>6.3}", suite.name(), ratio);
        rows.push(vec![suite.name().into(), format!("{ratio:.4}")]);
        avg += ratio;
    }
    say!(
        ctx,
        "  average    {:>6.3}  (paper: <1% overhead on average)",
        avg / Suite::ALL.len() as f64
    );
    ctx.summary("fig14.mean_accesses", avg / Suite::ALL.len() as f64);
    ctx.csv("fig14", &rows);
}

/// Figure 15: DRAM bandwidth utilization and write share per suite.
pub fn fig15(ctx: &mut Ctx) {
    let m = model(ctx, HierarchyConfig::hierarchy1());
    let mut rows = vec![vec![
        "suite".into(),
        "bandwidth_utilization".into(),
        "write_fraction".into(),
    ]];
    say!(ctx, "Commercial Baseline, Hierarchy1:");
    say!(
        ctx,
        "{:<10} {:>14} {:>14}",
        "suite",
        "bandwidth util",
        "write fraction"
    );
    let (mut wf, mut bw) = (0.0, 0.0);
    for suite in Suite::ALL {
        let r = m.run(MemoryDesign::CommercialBaseline, suite);
        say!(
            ctx,
            "{:<10} {:>13.1}% {:>13.1}%",
            suite.name(),
            r.bandwidth_utilization() * 100.0,
            r.write_fraction() * 100.0
        );
        rows.push(vec![
            suite.name().into(),
            format!("{:.4}", r.bandwidth_utilization()),
            format!("{:.4}", r.write_fraction()),
        ]);
        wf += r.write_fraction();
        bw += r.bandwidth_utilization();
    }
    say!(
        ctx,
        "average write fraction: {:.1}% (paper: ~15%)",
        wf / Suite::ALL.len() as f64 * 100.0
    );
    ctx.summary("fig15.mean_bw_util", bw / Suite::ALL.len() as f64);
    ctx.csv("fig15", &rows);
}

/// Figure 16: silicon corroboration — simulated Hetero-DMR vs the
/// emulation formula applied to the Exploit-Freq+Lat run.
pub fn fig16(ctx: &mut Ctx) {
    let m = model(ctx, HierarchyConfig::hierarchy1());
    let mut rows = vec![vec![
        "suite".into(),
        "simulated_hdmr".into(),
        "emulated_hdmr".into(),
        "freq_lat".into(),
    ]];
    say!(ctx, "Hierarchy1, speedups over Commercial Baseline:");
    say!(
        ctx,
        "{:<10} {:>14} {:>14} {:>10}",
        "suite",
        "sim Hetero-DMR",
        "emu Hetero-DMR",
        "freq+lat"
    );
    let (mut ds, mut de) = (0.0, 0.0);
    for suite in Suite::ALL {
        let base = m.run(MemoryDesign::CommercialBaseline, suite);
        let fast = m.run(MemoryDesign::ExploitFreqLat, suite);
        let sim = m.normalized(
            MemoryDesign::HeteroDmr { margin_mts: 800 },
            suite,
            UsageBucket::Low,
        );
        let emu = EmulationInputs::from_fast_run(&fast, dram::rate::DataRate::MT3200)
            .emulated_speedup(base.exec_time_ps);
        let fl = fast.speedup_over(&base);
        say!(
            ctx,
            "{:<10} {:>13.3}x {:>13.3}x {:>9.3}x",
            suite.name(),
            sim,
            emu,
            fl
        );
        rows.push(vec![
            suite.name().into(),
            format!("{sim:.4}"),
            format!("{emu:.4}"),
            format!("{fl:.4}"),
        ]);
        ds += sim;
        de += emu;
    }
    let n = Suite::ALL.len() as f64;
    say!(
        ctx,
        "average: simulated {:.3}x vs emulated {:.3}x — difference {:.1}% (paper: ~2-3%)",
        ds / n,
        de / n,
        ((de - ds) / ds * 100.0).abs()
    );
    ctx.csv("fig16", &rows);
}
