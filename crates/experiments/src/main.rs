//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments <target> [--seed N] [--ops N] [--jobs N] [--quick] [--csv DIR] [--metrics DIR]
//! ```
//!
//! `<target>` is `all` or one of the names listed by `--list`. Targets
//! run as isolated tasks on a fixed-size worker pool (`--jobs`, default
//! one worker per CPU); every RNG stream is derived from
//! `(seed, target)` counters rather than thread identity, so stdout and
//! the `--metrics` JSONL export are byte-identical for any `--jobs`
//! value. Output goes to stdout (the same rows/series the paper
//! reports); `--csv` adds per-experiment CSV files and `--metrics` adds
//! a deterministic JSONL snapshot of every simulator-internal metric
//! plus a run manifest (see README § Observability).

mod adaptive;
mod characterization;
mod context;
mod extras;
mod fleet;
mod health;
mod node_figures;
mod power;
mod report;
mod scenarios;
mod system_figures;
mod tables;

use context::{Ctx, LogLevel};
use runner::{RunOutcome, RunStatus, Runner};
use scenarios::TARGETS;
use telemetry::trace::TraceGroup;
use telemetry::Snapshot;

fn print_usage() {
    println!(
        "usage: experiments [<target>] [options]

Regenerates the paper's tables and figures. <target> defaults to 'all';
run with --list for every individual target name.

options:
  --seed N       master RNG seed (default 0xD1A2)
  --ops N        memory operations per core in node-level runs
  --windows N    split every node simulation into N time windows
                 (default 1); stdout, metrics and traces are
                 byte-identical for every N — windows only batch the
                 hot loop's telemetry flushes
  --jobs N       worker threads for running targets (0 or default:
                 one per CPU); output is identical for every N
  --quick        shrink every run for a fast smoke pass
  --fleet-jobs N jobs streamed by the 'fleet' target (default 10 M,
                 100 K with --quick); generated lazily, never stored
  --csv DIR      also write per-experiment CSV files into DIR
  --metrics DIR  record simulator telemetry; writes
                 DIR/<target>.metrics.jsonl (deterministic for a fixed
                 seed) and DIR/manifest.json
  --trace DIR    record causal sim-time traces; writes
                 DIR/<target>.trace.json (Chrome trace-event JSON,
                 deterministic for a fixed seed at any --jobs when
                 <target> is a single target), DIR/<target>.spans.txt
                 (span tree) and DIR/timing.jsonl (wall clock,
                 quarantined from the deterministic files)
  --series DIR   record windowed sim-time health series; writes
                 DIR/<target>.series.jsonl (one window per line,
                 deterministic for a fixed seed at any --jobs); the
                 'health' target also writes its incident ledger to
                 DIR/health.incidents.jsonl
  --log-level L  stderr verbosity: off, summary (default) or verbose
                 (stdout and exported files are never affected)
  --no-model-cache
                 disable the cross-target node-model result cache
                 (output is identical either way; runs are slower)
  --list         print the available targets and exit
  -h, --help     print this help and exit

subcommands:
  report DIR [--refs DIR] [--out FILE]
                 generate a Markdown run report (and paper-drift
                 check) from a --metrics/--trace output directory"
    );
}

/// Usage error: print `msg` to stderr and exit 2 (matching the
/// unknown-flag/unknown-target paths).
fn usage_error(msg: &str) -> ! {
    eprintln!("{msg} (run with --help for usage)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("report") {
        std::process::exit(report::run(&args[1..]));
    }
    let mut target = String::from("all");
    let mut jobs = 0usize; // 0 = one worker per CPU
    let mut ctx = Ctx::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_usage();
                return;
            }
            "--list" => {
                for t in TARGETS {
                    println!("{t}");
                }
                return;
            }
            "--seed" => {
                ctx.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error("--seed needs an integer"));
            }
            "--ops" => {
                ctx.ops_per_core = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error("--ops needs an integer"));
            }
            "--windows" => {
                ctx.windows = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w >= 1)
                    .unwrap_or_else(|| usage_error("--windows needs an integer >= 1"));
            }
            "--jobs" => {
                jobs = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error("--jobs needs an integer"));
            }
            "--quick" => ctx.quick(),
            "--fleet-jobs" => {
                ctx.fleet_jobs = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage_error("--fleet-jobs needs an integer")),
                );
            }
            "--no-model-cache" => ctx.model_cache = false,
            "--csv" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--csv needs a directory"));
                ctx.csv_dir = Some(dir.clone());
            }
            "--metrics" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--metrics needs a directory"));
                ctx.enable_metrics(dir.clone());
            }
            "--trace" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--trace needs a directory"));
                ctx.enable_trace(dir.clone());
            }
            "--series" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--series needs a directory"));
                ctx.enable_series(dir.clone());
            }
            "--log-level" => {
                ctx.log_level = iter
                    .next()
                    .and_then(|v| LogLevel::parse(v))
                    .unwrap_or_else(|| usage_error("--log-level needs off, summary or verbose"));
            }
            other if !other.starts_with('-') => target = other.to_string(),
            other => {
                eprintln!("unknown flag {other} (run with --help for usage)");
                std::process::exit(2);
            }
        }
    }

    let names: Vec<&str> = if target == "all" {
        TARGETS.to_vec()
    } else if scenarios::is_target(&target) {
        vec![target.as_str()]
    } else {
        eprintln!("unknown target '{target}'; valid targets:");
        eprintln!("  all {}", TARGETS.join(" "));
        std::process::exit(2);
    };

    let start = std::time::Instant::now();
    let runner = Runner::new(jobs);
    let outcomes = runner.run(scenarios::build(&ctx, &names));

    // Print buffered outputs in canonical order; failures go to stderr
    // after each target's partial output so the run context survives.
    let mut failed = 0usize;
    for o in &outcomes {
        println!("\n================ {} ================", o.name);
        print!("{}", o.out);
        if let RunStatus::Failed { panic } = &o.status {
            eprintln!("target '{}' panicked: {panic}", o.name);
            failed += 1;
        }
    }

    let wall_ms = start.elapsed().as_millis() as u64;
    if let Err(e) = write_metrics(&ctx, &target, &outcomes, wall_ms) {
        eprintln!("cannot write metrics: {e}");
        std::process::exit(1);
    }
    if let Err(e) = write_trace(&ctx, &target, &outcomes) {
        eprintln!("cannot write trace: {e}");
        std::process::exit(1);
    }
    if let Err(e) = write_series(&ctx, &target, &outcomes) {
        eprintln!("cannot write series: {e}");
        std::process::exit(1);
    }
    // Timing is inherently non-deterministic, so it goes to stderr
    // only: stdout stays byte-comparable across --jobs values.
    if ctx.log_level != LogLevel::Off {
        let recorded: u64 = outcomes.iter().map(|o| o.events_recorded).sum();
        let dropped: u64 = outcomes.iter().map(|o| o.events_dropped).sum();
        let rss = peak_rss_kb()
            .map(|kb| format!("; peak RSS {kb} kB"))
            .unwrap_or_default();
        eprintln!(
            "ran {} target(s) in {wall_ms} ms on {} worker(s); {recorded} event(s) logged, {dropped} dropped{rss}",
            outcomes.len(),
            runner::jobs()
        );
    }
    if ctx.log_level == LogLevel::Verbose {
        // Retained event-log entries, in canonical target order (the
        // outcome order), so verbose output is reproducible too.
        for o in &outcomes {
            for ev in &o.events {
                eprintln!("[{}] #{} {} = {}", o.name, ev.seq, ev.label, ev.value);
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} target(s) failed");
        std::process::exit(1);
    }
}

/// Peak resident-set size of this process in kB (`VmHWM`), for the
/// flat-memory regression gate on streaming runs. Linux-only; stderr
/// only — never part of the deterministic stdout contract.
#[cfg(target_os = "linux")]
fn peak_rss_kb() -> Option<u64> {
    std::fs::read_to_string("/proc/self/status")
        .ok()?
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_kb() -> Option<u64> {
    None
}

/// Exports the run's metric snapshot and manifest when `--metrics` was
/// requested. Per-task snapshots are merged in canonical target order
/// (so the merge is independent of completion order), then stripped of
/// wall-clock series; the JSONL file is therefore byte-identical across
/// runs of the same seed at any `--jobs`. Everything non-deterministic
/// lands in the manifest.
fn write_metrics(
    ctx: &Ctx,
    target: &str,
    outcomes: &[RunOutcome],
    wall_ms: u64,
) -> std::io::Result<()> {
    let Some(dir) = &ctx.metrics_dir else {
        return Ok(());
    };
    std::fs::create_dir_all(dir)?;
    let parts: Vec<Snapshot> = outcomes.iter().filter_map(|o| o.snapshot.clone()).collect();
    let sim = Snapshot::merged(&parts).sim_only();
    std::fs::write(
        format!("{dir}/{target}.metrics.jsonl"),
        telemetry::format_jsonl(&sim),
    )?;
    let (cache_hits, cache_misses) = hetero_dmr::shared_cache_stats();
    // Job spans the scheduler tracer dropped past its traced_job_cap,
    // summed across every metered schedule in the run — the manifest
    // records how much of each trace the cap truncated.
    let trace_dropped_jobs: u64 = sim
        .entries
        .iter()
        .filter(|e| e.name.ends_with(".trace_dropped_jobs"))
        .map(|e| match &e.value {
            telemetry::MetricValue::Counter(v) => *v,
            _ => 0,
        })
        .sum();
    let manifest = telemetry::RunManifest::new(target, ctx.seed)
        .knob("ops_per_core", ctx.ops_per_core)
        .knob("trials", ctx.trials)
        .knob("trace_jobs", ctx.trace_jobs)
        .knob("trace_dropped_jobs", trace_dropped_jobs)
        .knob("quick", ctx.quick_run)
        .knob("jobs", runner::jobs())
        .knob("model_cache", ctx.model_cache)
        .knob("model_cache_hits", cache_hits)
        .knob("model_cache_misses", cache_misses)
        .with_git_describe()
        .with_snapshot(&sim)
        .with_wall_ms(wall_ms)
        .with_target_walls(outcomes.iter().map(|o| (o.name.clone(), o.wall_ms as u64)))
        .with_events(
            outcomes.iter().map(|o| o.events_recorded).sum(),
            outcomes.iter().map(|o| o.events_dropped).sum(),
        );
    std::fs::write(format!("{dir}/manifest.json"), manifest.to_json())?;
    println!(
        "\nmetrics: {} series -> {dir}/{target}.metrics.jsonl (+ manifest.json)",
        sim.len()
    );
    Ok(())
}

/// Exports the run's causal trace when `--trace` was requested: one
/// Chrome trace-event JSON and one span-tree text file, with per-task
/// traces grouped in canonical target order so both files are
/// byte-identical across `--jobs` for single-target runs (the `all`
/// sweep shares a process-wide model cache, so which target pays each
/// simulation — and therefore its trace — depends on completion
/// order). Wall-clock timings are quarantined in `timing.jsonl`.
fn write_trace(ctx: &Ctx, target: &str, outcomes: &[RunOutcome]) -> std::io::Result<()> {
    let Some(dir) = &ctx.trace_dir else {
        return Ok(());
    };
    std::fs::create_dir_all(dir)?;
    let groups: Vec<TraceGroup> = outcomes
        .iter()
        .filter_map(|o| o.trace.clone().map(|t| (o.name.clone(), t)))
        .collect();
    let spans: usize = groups.iter().map(|(_, t)| t.len()).sum();
    std::fs::write(
        format!("{dir}/{target}.trace.json"),
        telemetry::trace::chrome_trace(&groups),
    )?;
    std::fs::write(
        format!("{dir}/{target}.spans.txt"),
        telemetry::trace::span_tree(&groups),
    )?;
    let mut timing = String::new();
    for o in outcomes {
        use std::fmt::Write as _;
        let _ = writeln!(
            timing,
            "{{\"target\": \"{}\", \"wall_ms\": {}}}",
            telemetry::escape_json(&o.name),
            o.wall_ms
        );
    }
    std::fs::write(format!("{dir}/timing.jsonl"), timing)?;
    println!("trace: {spans} span(s) -> {dir}/{target}.trace.json (+ spans.txt)");
    Ok(())
}

/// Exports the run's windowed time-series when `--series` was
/// requested. Per-task series snapshots merge in canonical target
/// order, and window aggregation is order-independent, so the JSONL
/// file is byte-identical across runs of the same seed at any
/// `--jobs` / `--windows`.
fn write_series(ctx: &Ctx, target: &str, outcomes: &[RunOutcome]) -> std::io::Result<()> {
    let Some(dir) = &ctx.series_dir else {
        return Ok(());
    };
    std::fs::create_dir_all(dir)?;
    let parts: Vec<telemetry::series::SeriesSnapshot> =
        outcomes.iter().filter_map(|o| o.series.clone()).collect();
    let merged = telemetry::series::SeriesSnapshot::merged(&parts);
    std::fs::write(format!("{dir}/{target}.series.jsonl"), merged.to_jsonl())?;
    println!(
        "series: {} series / {} window(s) -> {dir}/{target}.series.jsonl",
        merged.len(),
        merged.window_count()
    );
    Ok(())
}
