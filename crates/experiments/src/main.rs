//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments <target> [--seed N] [--ops N] [--quick] [--csv DIR]
//! ```
//!
//! `<target>` is `all` or one of: `table1 table2 table3 table4 fig1
//! fig2 fig3 fig4 fig5 fig6 fig11 fig12 fig13 fig14 fig15 fig16
//! fig17 extras`. Output goes to stdout (the same rows/series the paper
//! reports) and, with `--csv`, to per-experiment CSV files.

mod characterization;
mod context;
mod extras;
mod node_figures;
mod system_figures;
mod tables;

use context::Ctx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = String::from("all");
    let mut ctx = Ctx::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                ctx.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--ops" => {
                ctx.ops_per_core = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--ops needs an integer");
            }
            "--quick" => ctx.quick(),
            "--csv" => {
                ctx.csv_dir = Some(iter.next().expect("--csv needs a directory").clone());
            }
            other if !other.starts_with('-') => target = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let all = target == "all";
    let mut ran = false;
    macro_rules! run {
        ($name:literal, $f:expr) => {
            if all || target == $name {
                println!("\n================ {} ================", $name);
                $f;
                ran = true;
            }
        };
    }

    run!("table1", tables::table1(&ctx));
    run!("fig1", characterization::fig1(&ctx));
    run!("fig2", characterization::fig2(&ctx));
    run!("fig3", characterization::fig3(&ctx));
    run!("fig4", characterization::fig4(&ctx));
    run!("table2", tables::table2(&ctx));
    run!("table3", tables::table3(&ctx));
    run!("table4", tables::table4(&ctx));
    run!("fig5", node_figures::fig5(&ctx));
    run!("fig6", characterization::fig6(&ctx));
    run!("fig11", system_figures::fig11(&ctx));
    run!("fig12", node_figures::fig12(&ctx));
    run!("fig13", node_figures::fig13(&ctx));
    run!("fig14", node_figures::fig14(&ctx));
    run!("fig15", node_figures::fig15(&ctx));
    run!("fig16", node_figures::fig16(&ctx));
    run!("fig17", system_figures::fig17(&ctx));
    run!("extras", extras::extras(&ctx));

    if !ran {
        eprintln!("unknown target '{target}'");
        std::process::exit(2);
    }
}
