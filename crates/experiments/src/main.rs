//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments <target> [--seed N] [--ops N] [--quick] [--csv DIR] [--metrics DIR]
//! ```
//!
//! `<target>` is `all` or one of the names listed by `--list`. Output
//! goes to stdout (the same rows/series the paper reports); `--csv`
//! adds per-experiment CSV files and `--metrics` adds a deterministic
//! JSONL snapshot of every simulator-internal metric plus a run
//! manifest (see README § Observability).

mod characterization;
mod context;
mod extras;
mod node_figures;
mod system_figures;
mod tables;

use context::Ctx;

/// Every runnable target, in execution order.
const TARGETS: &[&str] = &[
    "table1", "fig1", "fig2", "fig3", "fig4", "table2", "table3", "table4", "fig5", "fig6",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "extras",
];

fn print_usage() {
    println!(
        "usage: experiments [<target>] [options]

Regenerates the paper's tables and figures. <target> defaults to 'all';
run with --list for every individual target name.

options:
  --seed N       master RNG seed (default 0xD1A2)
  --ops N        memory operations per core in node-level runs
  --quick        shrink every run for a fast smoke pass
  --csv DIR      also write per-experiment CSV files into DIR
  --metrics DIR  record simulator telemetry; writes
                 DIR/<target>.metrics.jsonl (deterministic for a fixed
                 seed) and DIR/manifest.json
  --list         print the available targets and exit
  -h, --help     print this help and exit"
    );
}

/// Usage error: print `msg` to stderr and exit 2 (matching the
/// unknown-flag/unknown-target paths).
fn usage_error(msg: &str) -> ! {
    eprintln!("{msg} (run with --help for usage)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = String::from("all");
    let mut ctx = Ctx::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_usage();
                return;
            }
            "--list" => {
                for t in TARGETS {
                    println!("{t}");
                }
                return;
            }
            "--seed" => {
                ctx.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error("--seed needs an integer"));
            }
            "--ops" => {
                ctx.ops_per_core = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error("--ops needs an integer"));
            }
            "--quick" => ctx.quick(),
            "--csv" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--csv needs a directory"));
                ctx.csv_dir = Some(dir.clone());
            }
            "--metrics" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--metrics needs a directory"));
                ctx.enable_metrics(dir.clone());
            }
            other if !other.starts_with('-') => target = other.to_string(),
            other => {
                eprintln!("unknown flag {other} (run with --help for usage)");
                std::process::exit(2);
            }
        }
    }

    let all = target == "all";
    let mut ran = false;
    let start = std::time::Instant::now();
    macro_rules! run {
        ($name:literal, $f:expr) => {
            if all || target == $name {
                println!("\n================ {} ================", $name);
                $f;
                ran = true;
            }
        };
    }

    run!("table1", tables::table1(&ctx));
    run!("fig1", characterization::fig1(&ctx));
    run!("fig2", characterization::fig2(&ctx));
    run!("fig3", characterization::fig3(&ctx));
    run!("fig4", characterization::fig4(&ctx));
    run!("table2", tables::table2(&ctx));
    run!("table3", tables::table3(&ctx));
    run!("table4", tables::table4(&ctx));
    run!("fig5", node_figures::fig5(&ctx));
    run!("fig6", characterization::fig6(&ctx));
    run!("fig11", system_figures::fig11(&ctx));
    run!("fig12", node_figures::fig12(&ctx));
    run!("fig13", node_figures::fig13(&ctx));
    run!("fig14", node_figures::fig14(&ctx));
    run!("fig15", node_figures::fig15(&ctx));
    run!("fig16", node_figures::fig16(&ctx));
    run!("fig17", system_figures::fig17(&ctx));
    run!("extras", extras::extras(&ctx));

    if !ran {
        eprintln!("unknown target '{target}'; valid targets:");
        eprintln!("  all {}", TARGETS.join(" "));
        std::process::exit(2);
    }

    let wall_ms = start.elapsed().as_millis() as u64;
    if let Err(e) = write_metrics(&ctx, &target, wall_ms) {
        eprintln!("cannot write metrics: {e}");
        std::process::exit(1);
    }
}

/// Exports the run's metric snapshot and manifest when `--metrics` was
/// requested. The JSONL file holds only simulation metrics (stripped
/// of wall-clock series), so it is byte-identical across runs of the
/// same seed; everything non-deterministic lands in the manifest.
fn write_metrics(ctx: &Ctx, target: &str, wall_ms: u64) -> std::io::Result<()> {
    let (Some(dir), Some(registry)) = (&ctx.metrics_dir, &ctx.registry) else {
        return Ok(());
    };
    std::fs::create_dir_all(dir)?;
    let sim = registry.snapshot().sim_only();
    std::fs::write(
        format!("{dir}/{target}.metrics.jsonl"),
        telemetry::format_jsonl(&sim),
    )?;
    let manifest = telemetry::RunManifest::new(target, ctx.seed)
        .knob("ops_per_core", ctx.ops_per_core)
        .knob("trials", ctx.trials)
        .knob("trace_jobs", ctx.trace_jobs)
        .knob("quick", ctx.quick_run)
        .with_git_describe()
        .with_snapshot(&sim)
        .with_wall_ms(wall_ms);
    std::fs::write(format!("{dir}/manifest.json"), manifest.to_json())?;
    println!(
        "\nmetrics: {} series -> {dir}/{target}.metrics.jsonl (+ manifest.json)",
        sim.len()
    );
    Ok(())
}
