//! Beyond the numbered figures: the paper's side investigations and
//! deployment-facing mechanisms.
//!
//! * the 1.35 V rate-cap probe (Section II-A),
//! * the fully-populated-system error rate (Section II-C),
//! * boot-time margin profiling (Section III-E),
//! * permanent-fault role remapping (Section III-E),
//! * Cloud generality and the DDR5 outlook (Section III-F).

use crate::context::{say, Ctx};
use dram::rate::DataRate;
use dram::timing::TimingParams;
use hetero_dmr::profiler::{ModuleUnderTest, NodeProfiler};
use hetero_dmr::protocol::HeteroDmrChannel;
use margin::errors::{system_rate_from_solo, TestCondition};
use margin::population::ModulePopulation;
use margin::voltage::investigate_rate_cap;
use margin::StressMeter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::utilization::UtilizationModel;

/// Runs every extra investigation.
pub fn extras(ctx: &mut Ctx) {
    voltage_probe(ctx);
    full_system_error_rate(ctx);
    boot_profiling(ctx);
    fault_remap_demo(ctx);
    generality(ctx);
}

fn voltage_probe(ctx: &mut Ctx) {
    say!(ctx, "-- Section II-A: the 1.35 V rate-cap probe --");
    let pop = ModulePopulation::paper_study(ctx.seed);
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x135);
    let inv = investigate_rate_cap(&pop, &mut rng);
    say!(
        ctx,
        "3200 MT/s modules at the 4000 MT/s cap: {}; improved at 1.35 V: {} (paper: 0 of 36)",
        inv.capped_total,
        inv.capped_improved
    );
    say!(
        ctx,
        "3200 MT/s modules below the cap: {}; improved at 1.35 V: {} (paper: 22 of 27)",
        inv.uncapped_total,
        inv.uncapped_improved
    );
    say!(
        ctx,
        "conclusion: cap is system-level? {}",
        inv.cap_is_system_level()
    );
    ctx.csv(
        "extras_voltage",
        &[
            vec!["metric".into(), "value".into()],
            vec!["capped_total".into(), inv.capped_total.to_string()],
            vec!["capped_improved".into(), inv.capped_improved.to_string()],
            vec!["uncapped_total".into(), inv.uncapped_total.to_string()],
            vec![
                "uncapped_improved".into(),
                inv.uncapped_improved.to_string(),
            ],
        ],
    );
}

fn full_system_error_rate(ctx: &mut Ctx) {
    say!(ctx, "\n-- Section II-C: fully populated memory system --");
    let pop = ModulePopulation::paper_study(ctx.seed);
    let solo: f64 = pop
        .mainstream()
        .map(|m| m.errors.ce_per_hour(TestCondition::FreqLat23C))
        .sum::<f64>()
        / 103.0;
    let system = system_rate_from_solo(solo, 2);
    say!(
        ctx,
        "mean per-module solo error rate (freq+lat, 23C): {solo:.1}/h"
    );
    say!(ctx,
        "per-module rate with 2 modules/channel populated: {system:.1}/h (paper: about half the solo rate)"
    );
}

fn boot_profiling(ctx: &mut Ctx) {
    say!(ctx, "\n-- Section III-E: boot-time margin profiling --");
    let pop = ModulePopulation::paper_study(ctx.seed);
    // Build a 12-channel node from the first 24 mainstream modules.
    let modules: Vec<ModuleUnderTest> = pop
        .mainstream()
        .take(24)
        .map(|m| ModuleUnderTest {
            specified: m.spec.organization.specified_rate,
            true_margin_mts: m.true_margin_mts,
        })
        .collect();
    let channels: Vec<Vec<ModuleUnderTest>> = modules.chunks(2).map(<[_]>::to_vec).collect();
    let profile = match ctx.metrics_scope("profiler") {
        Some(scope) => {
            let mut meter = StressMeter::default();
            meter.bind(&scope);
            NodeProfiler::default().profile_metered(&channels, &meter)
        }
        None => NodeProfiler::default().profile(&channels),
    };
    say!(
        ctx,
        "profiled node: channel margins {:?}",
        profile.channel_margins
    );
    say!(
        ctx,
        "node margin {} MT/s -> scheduler group {}",
        profile.node_margin_mts,
        profile.group()
    );
}

fn fault_remap_demo(ctx: &mut Ctx) {
    say!(ctx, "\n-- Section III-E: permanent-fault role remapping --");
    let mut ch = HeteroDmrChannel::new(1 << 12);
    let mut t = ch.set_used_blocks(1 << 10, 0);
    ch.inject_persistent_copy_fault(9);
    for _ in 0..5 {
        let (_, _, end) = ch.read::<StdRng>(9, t, None).unwrap();
        t = end;
    }
    say!(ctx,
        "after a stuck cell in the copy module: {} recoveries, roles swapped = {}, transitions = {}",
        ch.stats().recoveries,
        ch.roles_swapped(),
        ch.transitions()
    );
    let before = ch.transitions();
    for _ in 0..100 {
        let (_, _, end) = ch.read::<StdRng>(9, t, None).unwrap();
        t = end;
    }
    say!(
        ctx,
        "100 further reads of the faulty block: {} extra transitions (remap ended the churn)",
        ch.transitions() - before
    );
}

fn generality(ctx: &mut Ctx) {
    say!(ctx, "\n-- Section III-F: generality --");
    let cloud = UtilizationModel::cloud();
    say!(ctx,
        "Cloud utilization model: {:.0}% of machines below 50% memory use -> Hetero-DMR-eligible (turbo-boost analogy)",
        cloud.eligible_fraction() * 100.0
    );
    let ddr4 = TimingParams::ddr4_3200_spec();
    let ddr5 = TimingParams::ddr5_4800_spec();
    let outlook = DataRate::MT4800.plus_margin((4800.0 * 0.25) as u32);
    say!(
        ctx,
        "DDR5 outlook: same eye width at all rates -> similar fractional margin expected; \
         a 25% margin on DDR5-4800 would mean {} (burst {} ps vs DDR4-3200's {} ps)",
        outlook,
        ddr5.at_rate(outlook).burst_ps(),
        ddr4.burst_ps()
    );
}
