//! Shared experiment context: seeding, simulation length, CSV output,
//! the optional telemetry registry behind `--metrics`, and the
//! per-task output buffer the parallel runner collects.

use std::fs;
use std::io::Write;
use telemetry::trace::Tracer;
use telemetry::{Registry, Scope};

/// Appends a formatted line to the context's output buffer (the
/// parallel-safe replacement for `println!`): the runner prints every
/// buffer in canonical target order after all tasks join, so output is
/// byte-identical for any `--jobs` value.
macro_rules! say {
    ($ctx:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($ctx.out, $($arg)*);
    }};
}

/// Like [`say!`] without the trailing newline (replaces `print!`).
macro_rules! sayp {
    ($ctx:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!($ctx.out, $($arg)*);
    }};
}

pub(crate) use {say, sayp};

/// How chatty the run is on stderr (`--log-level`). Stdout is never
/// affected — it stays byte-comparable across levels and `--jobs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogLevel {
    /// Nothing beyond errors.
    Off,
    /// One line per run: wall time, worker count, event-log pressure.
    #[default]
    Summary,
    /// Summary plus every retained event-log entry, in canonical
    /// target order.
    Verbose,
}

impl LogLevel {
    /// Parses a `--log-level` value.
    pub fn parse(s: &str) -> Option<LogLevel> {
        Some(match s {
            "off" => LogLevel::Off,
            "summary" => LogLevel::Summary,
            "verbose" => LogLevel::Verbose,
            _ => return None,
        })
    }
}

/// Global experiment parameters.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Memory operations simulated per core in node-level runs.
    pub ops_per_core: usize,
    /// Time windows each node simulation is split into (`--windows`).
    /// Results and telemetry are byte-identical for any value; windows
    /// only set the tally-flush granularity of the batched hot loop.
    pub windows: u32,
    /// Monte Carlo trials for distribution experiments.
    pub trials: usize,
    /// Jobs in the system-wide trace.
    pub trace_jobs: usize,
    /// Jobs in the fleet-federation stream (`--fleet-jobs`); `None`
    /// derives the default from the run size (see [`Ctx::fleet_jobs`]).
    pub fleet_jobs: Option<u64>,
    /// Whether `--quick` shrank the run (recorded in the manifest).
    pub quick_run: bool,
    /// Whether node models may share the process-wide result cache
    /// (`--no-model-cache` turns it off; output is identical either
    /// way, only wall time changes).
    pub model_cache: bool,
    /// Where to write CSV copies of every series (optional).
    pub csv_dir: Option<String>,
    /// Where `--metrics` writes the JSONL snapshot + manifest.
    pub metrics_dir: Option<String>,
    /// Where `--trace` writes the Chrome trace + span tree.
    pub trace_dir: Option<String>,
    /// Where `--series` writes the health plane's windowed time-series
    /// (and the health target its incident ledger).
    pub series_dir: Option<String>,
    /// The series store instrumented components stream windowed
    /// rollups into; present exactly when `series_dir` is. Like
    /// `registry`, task contexts each get their *own* store
    /// ([`Ctx::for_task`]); the runner merges the snapshots in
    /// canonical target order.
    pub series: Option<telemetry::series::SeriesStore>,
    /// The causal tracer every instrumented component records into;
    /// present exactly when `trace_dir` is. Like `registry`, task
    /// contexts each get their *own* tracer ([`Ctx::for_task`]); the
    /// runner collects the buffers in canonical target order.
    pub tracer: Option<Tracer>,
    /// stderr verbosity (never affects stdout or exported files).
    pub log_level: LogLevel,
    /// The registry every instrumented component records into; present
    /// exactly when `metrics_dir` is. Task contexts built by
    /// [`Ctx::for_task`] each get their *own* registry so concurrent
    /// targets never interleave; the runner merges the snapshots.
    pub registry: Option<Registry>,
    /// Buffered human-readable output (see [`say!`]).
    pub out: String,
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx {
            seed: 0xD1A2,
            ops_per_core: 40_000,
            windows: 1,
            trials: 50_000,
            trace_jobs: 58_000,
            fleet_jobs: None,
            quick_run: false,
            model_cache: true,
            csv_dir: None,
            metrics_dir: None,
            trace_dir: None,
            series_dir: None,
            series: None,
            tracer: None,
            log_level: LogLevel::Summary,
            registry: None,
            out: String::new(),
        }
    }
}

impl Ctx {
    /// Shrinks everything for a fast smoke run.
    pub fn quick(&mut self) {
        self.ops_per_core = 8_000;
        self.trials = 5_000;
        self.trace_jobs = 5_000;
        self.quick_run = true;
    }

    /// Jobs the `fleet` target streams: an explicit `--fleet-jobs`
    /// wins; otherwise 10 M for full runs, 100 K under `--quick`
    /// (either way the stream is generated lazily, never stored).
    pub fn fleet_jobs(&self) -> u64 {
        self.fleet_jobs
            .unwrap_or(if self.quick_run { 100_000 } else { 10_000_000 })
    }

    /// Turns on metric collection, exported to `dir` at exit.
    pub fn enable_metrics(&mut self, dir: String) {
        self.metrics_dir = Some(dir);
        self.registry = Some(Registry::new());
    }

    /// Turns on causal tracing, exported to `dir` at exit.
    pub fn enable_trace(&mut self, dir: String) {
        self.trace_dir = Some(dir);
        self.tracer = Some(Tracer::new());
    }

    /// Turns on windowed time-series collection, exported to `dir` at
    /// exit.
    pub fn enable_series(&mut self, dir: String) {
        self.series_dir = Some(dir);
        self.series = Some(telemetry::series::SeriesStore::new());
    }

    /// A context for one experiment task: same knobs, but a fresh
    /// output buffer and (when metrics/tracing are on) a fresh private
    /// registry and tracer, so tasks running on different worker
    /// threads share no mutable state.
    pub fn for_task(&self) -> Ctx {
        Ctx {
            registry: self.registry.is_some().then(Registry::new),
            tracer: self.tracer.is_some().then(Tracer::new),
            series: self
                .series
                .is_some()
                .then(telemetry::series::SeriesStore::new),
            out: String::new(),
            csv_dir: self.csv_dir.clone(),
            metrics_dir: self.metrics_dir.clone(),
            trace_dir: self.trace_dir.clone(),
            series_dir: self.series_dir.clone(),
            ..*self
        }
    }

    /// A registry scope named `prefix`, when `--metrics` is on.
    pub fn metrics_scope(&self, prefix: &str) -> Option<Scope> {
        self.registry.as_ref().map(|r| r.scope(prefix))
    }

    /// Records a headline result as a `summary.<name>` gauge (stored
    /// in the ×10⁴ fixed point of [`telemetry::GAUGE_SCALE`], so it
    /// survives the integer metric model losslessly enough for drift
    /// checks). These gauges are what `experiments report` compares
    /// against the reference CSVs in `results/`.
    pub fn summary(&self, name: &str, value: f64) {
        if let Some(r) = &self.registry {
            r.gauge(&format!("summary.{name}")).set_scaled(value);
        }
    }

    /// Writes `rows` (first row = header) as `<name>.csv` when a CSV
    /// directory was requested.
    pub fn csv(&self, name: &str, rows: &[Vec<String>]) {
        let Some(dir) = &self.csv_dir else { return };
        if fs::create_dir_all(dir).is_err() {
            eprintln!("cannot create {dir}");
            return;
        }
        let path = format!("{dir}/{name}.csv");
        match fs::File::create(&path) {
            Ok(mut f) => {
                for row in rows {
                    let _ = writeln!(f, "{}", row.join(","));
                }
            }
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shrinks_everything() {
        let mut ctx = Ctx::default();
        let full = ctx.clone();
        ctx.quick();
        assert!(ctx.ops_per_core < full.ops_per_core);
        assert!(ctx.trials < full.trials);
        assert!(ctx.trace_jobs < full.trace_jobs);
        assert!(ctx.fleet_jobs() < full.fleet_jobs());
        assert_eq!(ctx.seed, full.seed, "quick keeps the seed");
        assert!(ctx.quick_run);
        // An explicit --fleet-jobs wins regardless of flag order.
        ctx.fleet_jobs = Some(42);
        assert_eq!(ctx.fleet_jobs(), 42);
    }

    #[test]
    fn metrics_scope_present_only_when_enabled() {
        let mut ctx = Ctx::default();
        assert!(ctx.metrics_scope("node").is_none());
        ctx.enable_metrics("/tmp/unused".into());
        let scope = ctx.metrics_scope("node").expect("registry on");
        scope.counter("ops").inc();
        let snap = ctx.registry.as_ref().unwrap().snapshot();
        assert_eq!(snap.counter("node.ops"), 1);
    }

    #[test]
    fn for_task_isolates_registry_and_output() {
        let mut ctx = Ctx::default();
        ctx.quick();
        ctx.enable_metrics("/tmp/unused".into());
        say!(&mut ctx, "parent line");
        let task = ctx.for_task();
        assert!(task.out.is_empty(), "task starts with an empty buffer");
        assert_eq!(task.trials, ctx.trials, "knobs carry over");
        task.metrics_scope("t").unwrap().counter("ops").inc();
        let parent_snap = ctx.registry.as_ref().unwrap().snapshot();
        assert!(
            parent_snap.is_empty(),
            "task metrics never leak into the parent registry"
        );
        // Without metrics, tasks carry no registry at all.
        let plain = Ctx::default().for_task();
        assert!(plain.registry.is_none());
    }

    #[test]
    fn series_store_is_task_private_like_the_registry() {
        let mut ctx = Ctx::default();
        assert!(ctx.series.is_none(), "off by default");
        ctx.enable_series("/tmp/unused".into());
        let task = ctx.for_task();
        task.series
            .as_ref()
            .unwrap()
            .series("t.sig", 10)
            .record(3, 1);
        assert!(
            ctx.series.as_ref().unwrap().snapshot().is_empty(),
            "task series never leak into the parent store"
        );
        assert_eq!(task.series.as_ref().unwrap().snapshot().len(), 1);
        assert!(Ctx::default().for_task().series.is_none());
    }

    #[test]
    fn say_buffers_formatted_lines() {
        let mut ctx = Ctx::default();
        say!(&mut ctx, "a={}", 1);
        sayp!(&mut ctx, "b");
        say!(&mut ctx, "c");
        assert_eq!(ctx.out, "a=1\nbc\n");
    }

    #[test]
    fn csv_writes_when_enabled_and_is_silent_otherwise() {
        let dir = std::env::temp_dir().join("hdmr_ctx_csv_test");
        let _ = fs::remove_dir_all(&dir);
        let mut ctx = Ctx::default();
        // Disabled by default: no directory appears.
        ctx.csv("nope", &[vec!["a".into()]]);
        assert!(!dir.exists());
        // Enabled: file with the right contents.
        ctx.csv_dir = Some(dir.to_string_lossy().into_owned());
        ctx.csv(
            "t",
            &[vec!["h1".into(), "h2".into()], vec!["1".into(), "2".into()]],
        );
        let text = fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(text, "h1,h2\n1,2\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
