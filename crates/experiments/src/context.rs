//! Shared experiment context: seeding, simulation length, CSV output,
//! and the optional telemetry registry behind `--metrics`.

use std::fs;
use std::io::Write;
use telemetry::{Registry, Scope};

/// Global experiment parameters.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Memory operations simulated per core in node-level runs.
    pub ops_per_core: usize,
    /// Monte Carlo trials for distribution experiments.
    pub trials: usize,
    /// Jobs in the system-wide trace.
    pub trace_jobs: usize,
    /// Whether `--quick` shrank the run (recorded in the manifest).
    pub quick_run: bool,
    /// Where to write CSV copies of every series (optional).
    pub csv_dir: Option<String>,
    /// Where `--metrics` writes the JSONL snapshot + manifest.
    pub metrics_dir: Option<String>,
    /// The registry every instrumented component records into; present
    /// exactly when `metrics_dir` is.
    pub registry: Option<Registry>,
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx {
            seed: 0xD1A2,
            ops_per_core: 40_000,
            trials: 50_000,
            trace_jobs: 58_000,
            quick_run: false,
            csv_dir: None,
            metrics_dir: None,
            registry: None,
        }
    }
}

impl Ctx {
    /// Shrinks everything for a fast smoke run.
    pub fn quick(&mut self) {
        self.ops_per_core = 8_000;
        self.trials = 5_000;
        self.trace_jobs = 5_000;
        self.quick_run = true;
    }

    /// Turns on metric collection, exported to `dir` at exit.
    pub fn enable_metrics(&mut self, dir: String) {
        self.metrics_dir = Some(dir);
        self.registry = Some(Registry::new());
    }

    /// A registry scope named `prefix`, when `--metrics` is on.
    pub fn metrics_scope(&self, prefix: &str) -> Option<Scope> {
        self.registry.as_ref().map(|r| r.scope(prefix))
    }

    /// Writes `rows` (first row = header) as `<name>.csv` when a CSV
    /// directory was requested.
    pub fn csv(&self, name: &str, rows: &[Vec<String>]) {
        let Some(dir) = &self.csv_dir else { return };
        if fs::create_dir_all(dir).is_err() {
            eprintln!("cannot create {dir}");
            return;
        }
        let path = format!("{dir}/{name}.csv");
        match fs::File::create(&path) {
            Ok(mut f) => {
                for row in rows {
                    let _ = writeln!(f, "{}", row.join(","));
                }
            }
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shrinks_everything() {
        let mut ctx = Ctx::default();
        let full = ctx.clone();
        ctx.quick();
        assert!(ctx.ops_per_core < full.ops_per_core);
        assert!(ctx.trials < full.trials);
        assert!(ctx.trace_jobs < full.trace_jobs);
        assert_eq!(ctx.seed, full.seed, "quick keeps the seed");
        assert!(ctx.quick_run);
    }

    #[test]
    fn metrics_scope_present_only_when_enabled() {
        let mut ctx = Ctx::default();
        assert!(ctx.metrics_scope("node").is_none());
        ctx.enable_metrics("/tmp/unused".into());
        let scope = ctx.metrics_scope("node").expect("registry on");
        scope.counter("ops").inc();
        let snap = ctx.registry.as_ref().unwrap().snapshot();
        assert_eq!(snap.counter("node.ops"), 1);
    }

    #[test]
    fn csv_writes_when_enabled_and_is_silent_otherwise() {
        let dir = std::env::temp_dir().join("hdmr_ctx_csv_test");
        let _ = fs::remove_dir_all(&dir);
        let mut ctx = Ctx::default();
        // Disabled by default: no directory appears.
        ctx.csv("nope", &[vec!["a".into()]]);
        assert!(!dir.exists());
        // Enabled: file with the right contents.
        ctx.csv_dir = Some(dir.to_string_lossy().into_owned());
        ctx.csv(
            "t",
            &[vec!["h1".into(), "h2".into()], vec!["1".into(), "2".into()]],
        );
        let text = fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(text, "h1,h2\n1,2\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
