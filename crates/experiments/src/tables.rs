//! Tables I–IV.

use crate::context::{say, Ctx};
use dram::timing::MemorySetting;
use margin::study::TABLE_I;
use memsim::config::HierarchyConfig;

/// Table I: scale of the characterization study vs prior works.
pub fn table1(ctx: &mut Ctx) {
    say!(
        ctx,
        "{:<17} {:<13} {:>9} {:>8}  Margin",
        "Study",
        "DRAM type",
        "# modules",
        "# chips"
    );
    let mut rows = vec![vec![
        "study".into(),
        "dram_type".into(),
        "modules".into(),
        "chips".into(),
        "margin".into(),
    ]];
    for s in TABLE_I {
        let modules = s
            .modules
            .map(|m| m.to_string())
            .unwrap_or_else(|| "N/A".into());
        say!(
            ctx,
            "{:<17} {:<13} {:>9} {:>8}  {}",
            s.name,
            s.dram_type,
            modules,
            s.chips,
            s.margin
        );
        rows.push(vec![
            s.name.into(),
            s.dram_type.into(),
            modules,
            s.chips.to_string(),
            s.margin.into(),
        ]);
    }
    ctx.csv("table1", &rows);
}

/// Table II: the four memory settings.
pub fn table2(ctx: &mut Ctx) {
    say!(
        ctx,
        "{:<38} {:>9} {:>8} {:>7} {:>7} {:>7}",
        "Setting",
        "Data Rate",
        "tRCD",
        "tRP",
        "tRAS",
        "tREFI"
    );
    let mut rows = vec![vec![
        "setting".into(),
        "data_rate_mts".into(),
        "trcd_ns".into(),
        "trp_ns".into(),
        "tras_ns".into(),
        "trefi_us".into(),
    ]];
    for setting in MemorySetting::ALL {
        let t = setting.timing();
        say!(
            ctx,
            "{:<38} {:>7}MT/s {:>6}ns {:>5}ns {:>5}ns {:>5}us",
            setting.name(),
            t.data_rate.mts(),
            t.t_rcd_ns,
            t.t_rp_ns,
            t.t_ras_ns,
            t.t_refi_us
        );
        rows.push(vec![
            setting.name().into(),
            t.data_rate.mts().to_string(),
            t.t_rcd_ns.to_string(),
            t.t_rp_ns.to_string(),
            t.t_ras_ns.to_string(),
            t.t_refi_us.to_string(),
        ]);
    }
    ctx.csv("table2", &rows);
}

/// Table III: the two real-system hierarchies.
pub fn table3(ctx: &mut Ctx) {
    let mut rows = vec![vec![
        "hierarchy".into(),
        "cores".into(),
        "l2_l3_per_core_mb".into(),
        "channels".into(),
        "modules_per_channel".into(),
        "ranks_per_module".into(),
    ]];
    for h in HierarchyConfig::both() {
        say!(
            ctx,
            "{}: {} cores, {:.3} MB L2+L3/core, {} channel(s), {} modules/channel, {} ranks/module",
            h.name,
            h.cores,
            h.cache_per_core_bytes as f64 / (1024.0 * 1024.0),
            h.memory.channels,
            h.memory.modules_per_channel,
            h.memory.ranks_per_module
        );
        rows.push(vec![
            h.name.into(),
            h.cores.to_string(),
            format!("{:.3}", h.cache_per_core_bytes as f64 / (1024.0 * 1024.0)),
            h.memory.channels.to_string(),
            h.memory.modules_per_channel.to_string(),
            h.memory.ranks_per_module.to_string(),
        ]);
    }
    ctx.csv("table3", &rows);
}

/// Table IV: simulated CPU and memory parameters.
pub fn table4(ctx: &mut Ctx) {
    let h = HierarchyConfig::hierarchy1();
    let c = h.core;
    say!(
        ctx,
        "Cores            : {} GHz, {}-wide OoO, {}-entry ROB, {} MSHRs",
        c.clock_ghz,
        c.width,
        c.rob_entries,
        c.mshrs
    );
    say!(
        ctx,
        "L1$              : {} KB, {}-way",
        c.l1_bytes / 1024,
        c.l1_ways
    );
    say!(
        ctx,
        "L1/L2 Prefetcher : stride (degree {}), next-line with auto turn-off",
        c.prefetch_degree
    );
    say!(
        ctx,
        "L2$              : {} MB per core, {}-way",
        c.l2_bytes / (1024 * 1024),
        c.l2_ways
    );
    say!(
        ctx,
        "L3$              : per Table III, {} ns latency",
        c.l3_latency_ns
    );
    say!(
        ctx,
        "Memory Controller: DDR4, {} ranks/channel, {} banks/rank, FR-FCFS w/ bank fairness,",
        h.memory.ranks_per_channel(),
        h.memory.banks_per_rank
    );
    say!(
        ctx,
        "                   hybrid page policy ({} cycle timeout), XOR bank mapping,",
        200
    );
    say!(
        ctx,
        "                   read queue {} entries/channel, write queue {} entries/channel",
        h.memory.read_queue,
        h.memory.write_queue
    );
    ctx.csv(
        "table4",
        &[
            vec!["parameter".into(), "value".into()],
            vec!["clock_ghz".into(), c.clock_ghz.to_string()],
            vec!["width".into(), c.width.to_string()],
            vec!["rob".into(), c.rob_entries.to_string()],
            vec!["l1_kb".into(), (c.l1_bytes / 1024).to_string()],
            vec!["l2_mb".into(), (c.l2_bytes / 1024 / 1024).to_string()],
            vec!["l3_latency_ns".into(), c.l3_latency_ns.to_string()],
            vec![
                "ranks_per_channel".into(),
                h.memory.ranks_per_channel().to_string(),
            ],
            vec!["banks_per_rank".into(), h.memory.banks_per_rank.to_string()],
            vec!["read_queue".into(), h.memory.read_queue.to_string()],
            vec!["write_queue".into(), h.memory.write_queue.to_string()],
        ],
    );
}
