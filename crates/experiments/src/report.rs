//! `experiments report`: turns a `--metrics`/`--trace` output
//! directory into a Markdown run report with a paper-drift check.
//!
//! The report ingests the run manifest, the deterministic metrics
//! snapshot, and (when present) the Chrome trace, then compares the
//! run's `summary.*` gauges against the reference figures in
//! `results/` (`--refs`). Any comparison outside its tolerance is a
//! **drift breach**: the breach is flagged in the report and the
//! process exits non-zero, so CI catches a reproduction silently
//! walking away from the paper.

use std::fmt::Write as _;
use telemetry::json::{self, Json};
use telemetry::monitor::parse_incidents_jsonl;
use telemetry::series::parse_series_jsonl;
use telemetry::trace::{check_well_nested, parse_chrome_trace, ChromeEvent};
use telemetry::{parse_csv_line, parse_jsonl, Histogram, MetricValue, Snapshot};

/// How a reference value is derived from a results CSV.
enum RefKind {
    /// Mean of the column over every row matching the filters.
    Mean,
    /// The column of the single row matching the filters.
    Cell,
    /// The `key` column of the row maximizing the (numeric) column.
    ArgmaxKey { key: &'static str },
}

/// One drift comparison: a `summary.<gauge>` metric vs a value derived
/// from a reference CSV, with a relative tolerance sized for the
/// `--quick` smoke configuration (quick runs simulate fewer ops, so
/// they sit near — not on — the full-run references).
struct RefSpec {
    /// Metric name, without the `summary.` prefix.
    gauge: &'static str,
    /// CSV file inside the `--refs` directory.
    file: &'static str,
    /// Column holding the reference value.
    col: &'static str,
    /// `(column, value)` row filters (all must match).
    filters: &'static [(&'static str, &'static str)],
    kind: RefKind,
    /// Allowed |measured − reference| / |reference|.
    rel_tol: f64,
}

/// Every comparison the drift table can make. A run only evaluates
/// the specs whose gauges it recorded (a fig5-only run checks the six
/// fig5 rows and skips the rest).
const REF_SPECS: &[RefSpec] = &[
    RefSpec {
        gauge: "fig5.hierarchy1.latency_margin",
        file: "fig5.csv",
        col: "latency_margin",
        filters: &[("hierarchy", "Hierarchy1")],
        kind: RefKind::Mean,
        rel_tol: 0.05,
    },
    RefSpec {
        gauge: "fig5.hierarchy1.frequency_margin",
        file: "fig5.csv",
        col: "frequency_margin",
        filters: &[("hierarchy", "Hierarchy1")],
        kind: RefKind::Mean,
        rel_tol: 0.05,
    },
    RefSpec {
        gauge: "fig5.hierarchy1.freq_lat_margins",
        file: "fig5.csv",
        col: "freq_lat_margins",
        filters: &[("hierarchy", "Hierarchy1")],
        kind: RefKind::Mean,
        rel_tol: 0.05,
    },
    RefSpec {
        gauge: "fig5.hierarchy2.latency_margin",
        file: "fig5.csv",
        col: "latency_margin",
        filters: &[("hierarchy", "Hierarchy2")],
        kind: RefKind::Mean,
        rel_tol: 0.05,
    },
    RefSpec {
        gauge: "fig5.hierarchy2.frequency_margin",
        file: "fig5.csv",
        col: "frequency_margin",
        filters: &[("hierarchy", "Hierarchy2")],
        kind: RefKind::Mean,
        rel_tol: 0.05,
    },
    RefSpec {
        gauge: "fig5.hierarchy2.freq_lat_margins",
        file: "fig5.csv",
        col: "freq_lat_margins",
        filters: &[("hierarchy", "Hierarchy2")],
        kind: RefKind::Mean,
        rel_tol: 0.05,
    },
    RefSpec {
        gauge: "fig2.mode_bucket_mts",
        file: "fig2.csv",
        col: "modules",
        filters: &[],
        kind: RefKind::ArgmaxKey { key: "bucket_mts" },
        rel_tol: 0.001,
    },
    RefSpec {
        gauge: "fig4.brand_new_mean_mts",
        file: "fig4.csv",
        col: "mean_mts",
        filters: &[("panel", "(a) condition"), ("group", "Brand new")],
        kind: RefKind::Cell,
        rel_tol: 0.02,
    },
    RefSpec {
        gauge: "fig12.h1.hdmr800.low",
        file: "fig12.csv",
        col: "normalized_perf",
        filters: &[
            ("hierarchy", "Hierarchy1"),
            ("margin_mts", "800"),
            ("design", "Hetero-DMR@0.8GT/s"),
            ("bucket", "[0~25%)"),
        ],
        kind: RefKind::Cell,
        rel_tol: 0.05,
    },
    RefSpec {
        gauge: "fig13.h1.hdmr800.epi",
        file: "fig13.csv",
        col: "normalized_epi",
        filters: &[
            ("hierarchy", "Hierarchy1"),
            ("design", "Hetero-DMR@0.8GT/s"),
        ],
        kind: RefKind::Cell,
        rel_tol: 0.05,
    },
    RefSpec {
        gauge: "fig14.mean_accesses",
        file: "fig14.csv",
        col: "normalized_accesses_per_instr",
        filters: &[],
        kind: RefKind::Mean,
        rel_tol: 0.02,
    },
    RefSpec {
        gauge: "fig15.mean_bw_util",
        file: "fig15.csv",
        col: "bandwidth_utilization",
        filters: &[],
        kind: RefKind::Mean,
        rel_tol: 0.05,
    },
    RefSpec {
        gauge: "fig17.aware_turnaround_speedup",
        file: "fig17.csv",
        col: "turnaround_speedup",
        filters: &[("system", "Hetero-DMR + margin-aware")],
        kind: RefKind::Cell,
        rel_tol: 0.08,
    },
];

/// Entry point for the `report` subcommand. Returns the process exit
/// code: 0 on a clean report, 1 on malformed inputs or drift breaches,
/// 2 on usage errors.
pub fn run(args: &[String]) -> i32 {
    let mut dir: Option<String> = None;
    let mut refs = String::from("results");
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--refs" => match iter.next() {
                Some(v) => refs = v.clone(),
                None => return usage("--refs needs a directory"),
            },
            "--out" => match iter.next() {
                Some(v) => out = Some(v.clone()),
                None => return usage("--out needs a file path"),
            },
            other if !other.starts_with('-') && dir.is_none() => dir = Some(other.to_string()),
            other => return usage(&format!("unexpected argument '{other}'")),
        }
    }
    let Some(dir) = dir else {
        return usage("report needs a metrics/trace directory");
    };
    let out = out.unwrap_or_else(|| format!("{dir}/report.md"));
    match generate(&dir, &refs) {
        Ok((text, breaches)) => {
            if let Err(e) = std::fs::write(&out, &text) {
                eprintln!("cannot write {out}: {e}");
                return 1;
            }
            println!("report -> {out}");
            if breaches > 0 {
                eprintln!("{breaches} drift breach(es) against {refs}/");
                1
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("report failed: {e}");
            1
        }
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!("{msg}\nusage: experiments report DIR [--refs DIR] [--out FILE]");
    2
}

/// Builds the report text; the second return is the breach count.
fn generate(dir: &str, refs: &str) -> Result<(String, usize), String> {
    let manifest_path = format!("{dir}/manifest.json");
    let manifest_text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {manifest_path}: {e}"))?;
    let manifest = json::parse(&manifest_text).map_err(|e| format!("{manifest_path}: {e}"))?;
    let target = manifest
        .get("target")
        .and_then(Json::as_str)
        .ok_or("manifest has no target")?
        .to_string();

    let metrics_path = format!("{dir}/{target}.metrics.jsonl");
    let snapshot = match std::fs::read_to_string(&metrics_path) {
        Ok(text) => parse_jsonl(&text).map_err(|e| format!("{metrics_path}: {e}"))?,
        Err(_) => Snapshot::default(),
    };

    let trace_path = format!("{dir}/{target}.trace.json");
    let trace = match std::fs::read_to_string(&trace_path) {
        Ok(text) => {
            let events = parse_chrome_trace(&text).map_err(|e| format!("{trace_path}: {e}"))?;
            check_well_nested(&events).map_err(|e| format!("{trace_path}: {e}"))?;
            Some(events)
        }
        Err(_) => None,
    };

    let mut md = String::new();
    let _ = writeln!(md, "# Run report: `{target}`\n");
    render_provenance(&mut md, &manifest, &snapshot);
    render_wall_clock(&mut md, &manifest);
    if let Some(events) = &trace {
        render_trace(&mut md, events);
    }
    render_ecc(&mut md, &snapshot);
    render_energy(&mut md, &snapshot);
    render_adaptive(&mut md, &snapshot);
    render_fleet(&mut md, &snapshot);
    render_queue_delays(&mut md, &snapshot);
    render_health(&mut md, dir, &target)?;
    let breaches = render_drift(&mut md, &snapshot, refs);
    Ok((md, breaches))
}

fn render_provenance(md: &mut String, manifest: &Json, snapshot: &Snapshot) {
    let _ = writeln!(md, "## Provenance\n");
    let _ = writeln!(md, "| field | value |");
    let _ = writeln!(md, "|---|---|");
    for key in ["seed", "git_describe", "metric_count"] {
        if let Some(v) = manifest.get(key) {
            let _ = writeln!(md, "| {key} | {} |", json_scalar(v));
        }
    }
    if let Some(knobs) = manifest.get("knobs").and_then(Json::as_obj) {
        for (k, v) in knobs {
            let _ = writeln!(md, "| knob: {k} | {} |", json_scalar(v));
        }
    }
    let _ = writeln!(md, "| metrics parsed | {} series |", snapshot.len());
    let recorded = manifest
        .get("events_recorded")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let dropped = manifest
        .get("events_dropped")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let _ = writeln!(md, "| event log | {recorded} recorded, {dropped} dropped |");
    if dropped > 0 {
        let _ = writeln!(
            md,
            "\n> Note: the bounded event ring evicted {dropped} event(s); the retained window is partial."
        );
    }
    md.push('\n');
}

fn render_wall_clock(md: &mut String, manifest: &Json) {
    let Some(walls) = manifest.get("target_wall_ms").and_then(Json::as_obj) else {
        return;
    };
    if walls.is_empty() {
        return;
    }
    let _ = writeln!(md, "## Wall clock (non-deterministic)\n");
    let _ = writeln!(md, "| target | wall (ms) |");
    let _ = writeln!(md, "|---|---|");
    for (name, ms) in walls {
        let _ = writeln!(md, "| {name} | {} |", json_scalar(ms));
    }
    if let Some(total) = manifest.get("wall_ms").and_then(Json::as_u64) {
        let _ = writeln!(md, "| **total** | **{total}** |");
    }
    md.push('\n');
}

/// Buckets a span name into a reporting family (`write_drain.ch3` and
/// `write_drain.ch0` are the same row; `mode.read_enter` stays whole).
fn name_stem(name: &str) -> &str {
    for prefix in ["write_drain", "job", "sim", "task"] {
        if name
            .strip_prefix(prefix)
            .is_some_and(|r| r.starts_with('.'))
        {
            return prefix;
        }
    }
    name
}

fn render_trace(md: &mut String, events: &[ChromeEvent]) {
    let _ = writeln!(md, "## Trace\n");
    let spans = events.iter().filter(|e| e.ph == "X").count();
    let instants = events.len() - spans;
    let _ = writeln!(
        md,
        "{} event(s): {spans} span(s), {instants} instant(s), well-nested.\n",
        events.len()
    );
    // Family tallies: count, total duration, and log₂-resolution
    // duration quantiles (durations fold into a histogram so the
    // quantile math is the same one the metrics layer uses).
    let mut families: Vec<(String, usize, u64, Histogram)> = Vec::new();
    for ev in events {
        let stem = name_stem(&ev.name).to_string();
        match families.iter_mut().find(|(n, _, _, _)| *n == stem) {
            Some((_, count, dur, hist)) => {
                *count += 1;
                *dur += ev.dur;
                hist.record(ev.dur);
            }
            None => {
                let hist = Histogram::new();
                hist.record(ev.dur);
                families.push((stem, 1, ev.dur, hist));
            }
        }
    }
    families.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let _ = writeln!(
        md,
        "| span family | events | total duration | p50 | p95 | p99 |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for (name, count, dur, hist) in &families {
        let snap = hist.snapshot();
        let q = |q: f64| snap.approx_quantile(q).unwrap_or(0);
        let _ = writeln!(
            md,
            "| {name} | {count} | {dur} | {} | {} | {} |",
            q(0.50),
            q(0.95),
            q(0.99)
        );
    }
    md.push('\n');
    // Mode-transition / down-bin timeline (the down-bin triage view):
    // the first few epoch boundaries in (process, time) order.
    let mut timeline: Vec<&ChromeEvent> = events
        .iter()
        .filter(|e| e.name.starts_with("mode.") || e.name == "down_bin")
        .collect();
    timeline.sort_by_key(|e| (e.pid, e.ts));
    if !timeline.is_empty() {
        let _ = writeln!(md, "### Mode transitions\n");
        const SHOWN: usize = 12;
        for ev in timeline.iter().take(SHOWN) {
            let _ = writeln!(md, "- pid {} @ {} ps: `{}`", ev.pid, ev.ts, ev.name);
        }
        if timeline.len() > SHOWN {
            let _ = writeln!(md, "- … {} more", timeline.len() - SHOWN);
        }
        md.push('\n');
    }
}

/// CE/UE/SDC ledgers per telemetry scope, from the metrics snapshot.
fn render_ecc(md: &mut String, snapshot: &Snapshot) {
    let mut scopes: Vec<(String, [u64; 4])> = Vec::new();
    for entry in &snapshot.entries {
        let Some((scope, leaf)) = entry.name.rsplit_once(".ecc.") else {
            continue;
        };
        let slot = match leaf {
            "injected" => 0,
            "ce" => 1,
            "ue" => 2,
            "sdc" => 3,
            _ => continue,
        };
        let MetricValue::Counter(v) = entry.value else {
            continue;
        };
        match scopes.iter_mut().find(|(s, _)| *s == scope) {
            Some((_, row)) => row[slot] += v,
            None => {
                let mut row = [0u64; 4];
                row[slot] = v;
                scopes.push((scope.to_string(), row));
            }
        }
    }
    if scopes.is_empty() {
        return;
    }
    let _ = writeln!(md, "## ECC outcomes\n");
    let _ = writeln!(md, "| scope | injected | CE | UE | SDC |");
    let _ = writeln!(md, "|---|---|---|---|---|");
    for (scope, [injected, ce, ue, sdc]) in &scopes {
        let _ = writeln!(md, "| {scope} | {injected} | {ce} | {ue} | {sdc} |");
    }
    md.push('\n');
}

/// Power/energy results: the `energy` and `configurator` headline
/// gauges plus the simulator's bank-state residency tallies (summed
/// across channel scopes), when the run recorded any.
fn render_energy(md: &mut String, snapshot: &Snapshot) {
    let mut gauges: Vec<(&str, f64)> = Vec::new();
    let mut residency = [("active", 0u64), ("refresh", 0u64), ("self_refresh", 0u64)];
    let mut saw_residency = false;
    for entry in &snapshot.entries {
        if let Some(name) = entry.name.strip_prefix("summary.") {
            if name.starts_with("energy.") || name.starts_with("configurator.") {
                if let MetricValue::Gauge(v) = entry.value {
                    gauges.push((name, v as f64 / telemetry::GAUGE_SCALE));
                }
            }
            continue;
        }
        let Some((_, leaf)) = entry.name.rsplit_once('.') else {
            continue;
        };
        let MetricValue::Counter(v) = entry.value else {
            continue;
        };
        for (state, total) in residency.iter_mut() {
            if leaf == format!("residency_{state}_bank_ps") {
                *total += v;
                saw_residency = true;
            }
        }
    }
    if gauges.is_empty() && !saw_residency {
        return;
    }
    let _ = writeln!(md, "## Power/energy\n");
    if !gauges.is_empty() {
        let _ = writeln!(md, "| gauge | value |");
        let _ = writeln!(md, "|---|---|");
        for (name, v) in &gauges {
            let _ = writeln!(md, "| {name} | {v:.4} |");
        }
        md.push('\n');
    }
    if saw_residency {
        let _ = writeln!(
            md,
            "Bank-state residency (bank·ps, summed over every recorded channel):\n"
        );
        let _ = writeln!(md, "| state | bank·ps |");
        let _ = writeln!(md, "|---|---|");
        for (state, total) in &residency {
            let _ = writeln!(md, "| {state} | {total} |");
        }
        md.push('\n');
    }
}

/// Adaptive-margin ablation results: the `adaptive` target's headline
/// gauges (offline vs online speedup and UE outcomes per disturbance
/// scenario) plus the governor's decision counters, when the run
/// recorded any.
fn render_adaptive(md: &mut String, snapshot: &Snapshot) {
    let mut gauges: Vec<(&str, f64)> = Vec::new();
    let mut decisions: Vec<(&str, u64)> = Vec::new();
    for entry in &snapshot.entries {
        if let Some(name) = entry.name.strip_prefix("summary.adaptive.") {
            if let MetricValue::Gauge(v) = entry.value {
                gauges.push((name, v as f64 / telemetry::GAUGE_SCALE));
            }
            continue;
        }
        let Some(name) = entry.name.strip_prefix("adaptive.") else {
            continue;
        };
        let Some((_, leaf)) = name.rsplit_once('.') else {
            continue;
        };
        if matches!(leaf, "steps_up" | "steps_down" | "retreats" | "fallbacks") {
            if let MetricValue::Counter(v) = entry.value {
                decisions.push((name, v));
            }
        }
    }
    if gauges.is_empty() && decisions.is_empty() {
        return;
    }
    let _ = writeln!(md, "## Adaptive margin\n");
    if !gauges.is_empty() {
        let _ = writeln!(md, "Offline binning vs online adaptation, per scenario:\n");
        let _ = writeln!(md, "| gauge | value |");
        let _ = writeln!(md, "|---|---|");
        for (name, v) in &gauges {
            let _ = writeln!(md, "| {name} | {v:.4} |");
        }
        md.push('\n');
    }
    if !decisions.is_empty() {
        let _ = writeln!(md, "Governor decisions:\n");
        let _ = writeln!(md, "| counter | value |");
        let _ = writeln!(md, "|---|---|");
        for (name, v) in &decisions {
            let _ = writeln!(md, "| {name} | {v} |");
        }
        md.push('\n');
    }
}

/// Fleet-federation results: the `fleet` target's headline gauges
/// (placement-policy comparison) plus per-member job-start counters,
/// when the run recorded any.
fn render_fleet(md: &mut String, snapshot: &Snapshot) {
    let mut gauges: Vec<(&str, f64)> = Vec::new();
    let mut starts: Vec<(&str, u64)> = Vec::new();
    for entry in &snapshot.entries {
        if let Some(name) = entry.name.strip_prefix("summary.fleet.") {
            if let MetricValue::Gauge(v) = entry.value {
                gauges.push((name, v as f64 / telemetry::GAUGE_SCALE));
            }
            continue;
        }
        let Some(name) = entry.name.strip_prefix("fleet.") else {
            continue;
        };
        let Some((_, leaf)) = name.rsplit_once('.') else {
            continue;
        };
        if matches!(
            leaf,
            "jobs_started" | "jobs_backfilled" | "unknown_group_starts"
        ) {
            if let MetricValue::Counter(v) = entry.value {
                starts.push((name, v));
            }
        }
    }
    if gauges.is_empty() && starts.is_empty() {
        return;
    }
    let _ = writeln!(md, "## Fleet federation\n");
    if !gauges.is_empty() {
        let _ = writeln!(
            md,
            "Margin-aware vs capacity-weighted placement over the streamed fleet:\n"
        );
        let _ = writeln!(md, "| gauge | value |");
        let _ = writeln!(md, "|---|---|");
        for (name, v) in &gauges {
            let _ = writeln!(md, "| {name} | {v:.4} |");
        }
        md.push('\n');
    }
    if !starts.is_empty() {
        let _ = writeln!(md, "Per-member scheduling counters:\n");
        let _ = writeln!(md, "| counter | value |");
        let _ = writeln!(md, "|---|---|");
        for (name, v) in &starts {
            let _ = writeln!(md, "| {name} | {v} |");
        }
        md.push('\n');
    }
}

/// Queue-delay latency distributions: every `*.queue_delay_ms`
/// histogram in the snapshot (the scheduler meters one per margin
/// group and the fleet shards one per member), with log₂-resolution
/// quantiles from the snapshot's sparse buckets.
fn render_queue_delays(md: &mut String, snapshot: &Snapshot) {
    let mut rows: Vec<(&str, &telemetry::HistogramSnapshot)> = Vec::new();
    for entry in &snapshot.entries {
        let Some(scope) = entry.name.strip_suffix(".queue_delay_ms") else {
            continue;
        };
        if let MetricValue::Histogram(h) = &entry.value {
            if h.count > 0 {
                rows.push((scope, h));
            }
        }
    }
    if rows.is_empty() {
        return;
    }
    let _ = writeln!(md, "## Queue delays\n");
    let _ = writeln!(md, "| scope | jobs | mean ms | p50 | p95 | p99 |");
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for (scope, h) in &rows {
        let q = |q: f64| h.approx_quantile(q).unwrap_or(0);
        let _ = writeln!(
            md,
            "| {scope} | {} | {:.1} | {} | {} | {} |",
            h.count,
            h.mean(),
            q(0.50),
            q(0.95),
            q(0.99)
        );
    }
    md.push('\n');
}

/// A unicode sparkline of per-window sums, normalized to the series
/// peak (at most `cap` windows, oldest first).
fn sparkline(windows: &[(u64, telemetry::series::WindowAgg)], cap: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = windows.iter().map(|(_, w)| w.sum).max().unwrap_or(0).max(1);
    windows
        .iter()
        .take(cap)
        .map(|(_, w)| BARS[((w.sum * (BARS.len() as u64 - 1)) / peak) as usize])
        .collect()
}

/// The streaming health plane: per-window sparktables from the
/// `--series` export and the incident ledger's timeline, when the run
/// produced them.
fn render_health(md: &mut String, dir: &str, target: &str) -> Result<(), String> {
    let series_path = format!("{dir}/{target}.series.jsonl");
    let series = match std::fs::read_to_string(&series_path) {
        Ok(text) => {
            parse_series_jsonl(&text)
                .map_err(|e| format!("{series_path}: {e}"))?
                .entries
        }
        Err(_) => Vec::new(),
    };
    let incidents_path = format!("{dir}/health.incidents.jsonl");
    let ledger = match std::fs::read_to_string(&incidents_path) {
        Ok(text) => {
            Some(parse_incidents_jsonl(&text).map_err(|e| format!("{incidents_path}: {e}"))?)
        }
        Err(_) => None,
    };
    if series.is_empty() && ledger.is_none() {
        return Ok(());
    }
    let _ = writeln!(md, "## Health\n");
    if !series.is_empty() {
        const SPARK_CAP: usize = 48;
        let _ = writeln!(
            md,
            "Windowed time-series rollups (sparklines show per-window \
             sums over the first {SPARK_CAP} windows, scaled to each \
             series' peak):\n"
        );
        let _ = writeln!(md, "| series | windows | total | activity |");
        let _ = writeln!(md, "|---|---|---|---|");
        for entry in &series {
            let total: u64 = entry.windows.iter().map(|(_, w)| w.sum).sum();
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} |",
                entry.name,
                entry.windows.len(),
                total,
                sparkline(&entry.windows, SPARK_CAP)
            );
        }
        md.push('\n');
    }
    if let Some(ledger) = ledger {
        let _ = writeln!(
            md,
            "Incident ledger: {} incident(s), {} still open.\n",
            ledger.len(),
            ledger.open_count()
        );
        let _ = writeln!(
            md,
            "| id | detector | scope | severity | state | first | last | windows | peak |"
        );
        let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|");
        for inc in ledger.incidents() {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                inc.id,
                inc.detector,
                inc.scope,
                inc.severity.label(),
                inc.state.label(),
                inc.first,
                inc.last,
                inc.windows,
                inc.peak_milli / 1_000
            );
        }
        md.push('\n');
    }
    Ok(())
}

/// The paper-drift table. Returns the number of tolerance breaches.
fn render_drift(md: &mut String, snapshot: &Snapshot, refs: &str) -> usize {
    let _ = writeln!(md, "## Paper drift\n");
    let _ = writeln!(
        md,
        "`summary.*` gauges vs the reference figures in `{refs}/` \
         (tolerances are sized for `--quick` runs).\n"
    );
    let _ = writeln!(md, "| gauge | measured | reference | Δ | tol | status |");
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    let mut breaches = 0;
    let mut compared = 0;
    for spec in REF_SPECS {
        let measured = match snapshot.get(&format!("summary.{}", spec.gauge)) {
            Some(MetricValue::Gauge(v)) => *v as f64 / 1e4,
            _ => {
                let _ = writeln!(md, "| {} | — | — | — | — | not run |", spec.gauge);
                continue;
            }
        };
        let reference = match reference_value(refs, spec) {
            Ok(v) => v,
            Err(e) => {
                let _ = writeln!(
                    md,
                    "| {} | {measured:.4} | — | — | — | no reference ({e}) |",
                    spec.gauge
                );
                continue;
            }
        };
        compared += 1;
        let delta = if reference.abs() > f64::EPSILON {
            (measured - reference).abs() / reference.abs()
        } else {
            (measured - reference).abs()
        };
        let ok = delta <= spec.rel_tol;
        if !ok {
            breaches += 1;
        }
        let _ = writeln!(
            md,
            "| {} | {measured:.4} | {reference:.4} | {:.2}% | {:.2}% | {} |",
            spec.gauge,
            delta * 100.0,
            spec.rel_tol * 100.0,
            if ok { "ok" } else { "**BREACH**" }
        );
    }
    let _ = writeln!(md, "\n{compared} comparison(s), {breaches} breach(es).\n");
    breaches
}

/// Derives one reference value from a results CSV.
fn reference_value(refs: &str, spec: &RefSpec) -> Result<f64, String> {
    let path = format!("{refs}/{}", spec.file);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = parse_csv_line(lines.next().ok_or("empty CSV")?);
    let col_idx = |name: &str| {
        header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| format!("{path}: no column '{name}'"))
    };
    let value_col = col_idx(spec.col)?;
    let filter_cols: Vec<(usize, &str)> = spec
        .filters
        .iter()
        .map(|(col, want)| col_idx(col).map(|i| (i, *want)))
        .collect::<Result<_, _>>()?;
    let mut matched: Vec<Vec<String>> = Vec::new();
    for line in lines {
        let row = parse_csv_line(line);
        if filter_cols
            .iter()
            .all(|&(i, want)| row.get(i).is_some_and(|v| v == want))
        {
            matched.push(row);
        }
    }
    if matched.is_empty() {
        return Err(format!("{path}: no row matches the filters"));
    }
    let cell = |row: &[String], i: usize| -> Result<f64, String> {
        row.get(i)
            .and_then(|v| v.parse::<f64>().ok())
            .ok_or_else(|| format!("{path}: non-numeric cell in '{}'", header[i]))
    };
    match &spec.kind {
        RefKind::Mean => {
            let mut sum = 0.0;
            for row in &matched {
                sum += cell(row, value_col)?;
            }
            Ok(sum / matched.len() as f64)
        }
        RefKind::Cell => {
            if matched.len() > 1 {
                return Err(format!("{path}: filters match {} rows", matched.len()));
            }
            cell(&matched[0], value_col)
        }
        RefKind::ArgmaxKey { key } => {
            let key_col = col_idx(key)?;
            let mut best: Option<(f64, f64)> = None;
            for row in &matched {
                let v = cell(row, value_col)?;
                let k = cell(row, key_col)?;
                if best.is_none_or(|(bv, _)| v > bv) {
                    best = Some((v, k));
                }
            }
            Ok(best.expect("matched is non-empty").1)
        }
    }
}

/// Renders a scalar JSON value without quotes-for-numbers noise.
fn json_scalar(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Null => "—".into(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => {
            if n.fract() == 0.0 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        _ => "…".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_specs_resolve_against_checked_in_results() {
        // Every spec must derive a finite reference from the repo's
        // own results/ directory — catches renamed columns or labels.
        for spec in REF_SPECS {
            let v = reference_value("../../results", spec)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.gauge));
            assert!(v.is_finite() && v > 0.0, "{}: {v}", spec.gauge);
        }
    }

    #[test]
    fn fig5_reference_is_the_suite_mean() {
        let spec = REF_SPECS
            .iter()
            .find(|s| s.gauge == "fig5.hierarchy1.freq_lat_margins")
            .unwrap();
        let v = reference_value("../../results", spec).unwrap();
        // Mean of the six Hierarchy1 freq_lat_margins cells.
        assert!((v - 1.2160).abs() < 0.0015, "{v}");
    }

    #[test]
    fn fig2_reference_is_the_mode_bucket() {
        let spec = REF_SPECS
            .iter()
            .find(|s| s.gauge == "fig2.mode_bucket_mts")
            .unwrap();
        assert_eq!(reference_value("../../results", spec).unwrap(), 800.0);
    }

    #[test]
    fn energy_section_renders_gauges_and_residency() {
        let r = telemetry::Registry::new();
        r.gauge("summary.energy.sweep.ddr5_6400.perf_per_w_rel")
            .set_scaled(1.23);
        r.gauge("summary.configurator.feasible").set_scaled(4.0);
        r.scope("sweep.ddr5_6400.hpcg.ch0.controller")
            .counter("residency_active_bank_ps")
            .add(500);
        r.scope("sweep.ddr5_6400.hpcg.ch1.controller")
            .counter("residency_active_bank_ps")
            .add(250);
        let mut md = String::new();
        render_energy(&mut md, &r.snapshot());
        assert!(md.contains("## Power/energy"));
        assert!(md.contains("| energy.sweep.ddr5_6400.perf_per_w_rel | 1.2300 |"));
        assert!(md.contains("| configurator.feasible | 4.0000 |"));
        assert!(md.contains("| active | 750 |"), "{md}");
        // A snapshot without energy gauges or residency renders nothing.
        let mut empty = String::new();
        render_energy(&mut empty, &Snapshot::default());
        assert!(empty.is_empty());
    }

    #[test]
    fn adaptive_section_renders_gauges_and_decisions() {
        let r = telemetry::Registry::new();
        r.gauge("summary.adaptive.temp_transient.online_speedup")
            .set_scaled(1.12);
        r.gauge("summary.adaptive.offline_ue_total")
            .set_scaled(61.0);
        r.scope("adaptive.temp_transient.online")
            .counter("retreats")
            .add(2);
        r.scope("adaptive.temp_transient.online")
            .counter("steps_up")
            .add(5);
        // Unrelated counters under the prefix stay out of the table.
        r.scope("adaptive.temp_transient.online")
            .counter("epoch_rolls")
            .add(48);
        let mut md = String::new();
        render_adaptive(&mut md, &r.snapshot());
        assert!(md.contains("## Adaptive margin"));
        assert!(md.contains("| temp_transient.online_speedup | 1.1200 |"));
        assert!(md.contains("| offline_ue_total | 61.0000 |"));
        assert!(md.contains("| temp_transient.online.retreats | 2 |"));
        assert!(md.contains("| temp_transient.online.steps_up | 5 |"));
        assert!(!md.contains("epoch_rolls"), "{md}");
        // A snapshot without adaptive series renders nothing.
        let mut empty = String::new();
        render_adaptive(&mut empty, &Snapshot::default());
        assert!(empty.is_empty());
    }

    #[test]
    fn fleet_section_renders_gauges_and_counters() {
        let r = telemetry::Registry::new();
        r.gauge("summary.fleet.aware_turnaround_speedup")
            .set_scaled(1.07);
        r.gauge("summary.fleet.jobs").set_scaled(100_000.0);
        r.scope("fleet.margin_aware.grizzly")
            .counter("jobs_started")
            .add(61_234);
        r.scope("fleet.margin_aware.grizzly")
            .counter("unknown_group_starts")
            .add(0);
        // Unrelated counters under the prefix stay out of the table.
        r.scope("fleet.margin_aware.grizzly")
            .counter("sched_pass_ops")
            .add(9);
        let mut md = String::new();
        render_fleet(&mut md, &r.snapshot());
        assert!(md.contains("## Fleet federation"));
        assert!(md.contains("| aware_turnaround_speedup | 1.0700 |"));
        assert!(md.contains("| jobs | 100000.0000 |"));
        assert!(md.contains("| margin_aware.grizzly.jobs_started | 61234 |"));
        assert!(!md.contains("sched_pass_ops"), "{md}");
        // A snapshot without fleet series renders nothing.
        let mut empty = String::new();
        render_fleet(&mut empty, &Snapshot::default());
        assert!(empty.is_empty());
    }

    #[test]
    fn span_family_table_pins_quantile_columns() {
        let span = |name: &str, dur: u64| ChromeEvent {
            name: name.into(),
            ph: "X".into(),
            dur,
            ..ChromeEvent::default()
        };
        let mut events = vec![span("job.1", 100), span("job.2", 200), span("schedule", 50)];
        events.extend((0..8).map(|i| span(&format!("job.{}", i + 3), 100)));
        let mut md = String::new();
        render_trace(&mut md, &events);
        assert!(
            md.contains("| span family | events | total duration | p50 | p95 | p99 |"),
            "{md}"
        );
        // Ten job spans: nine at 100 (bucket hi 127), one at 200
        // (bucket hi 255): p50 = 127, p95 = p99 = 255.
        assert!(md.contains("| job | 10 | 1100 | 127 | 255 | 255 |"), "{md}");
        assert!(md.contains("| schedule | 1 | 50 | 63 | 63 | 63 |"), "{md}");
    }

    #[test]
    fn queue_delay_table_pins_quantile_columns() {
        let r = telemetry::Registry::new();
        let h = r
            .scope("fleet.margin_aware.grizzly.group800")
            .histogram("queue_delay_ms");
        for _ in 0..99 {
            h.record(100);
        }
        h.record(10_000);
        // Empty histograms and non-queue-delay metrics stay out.
        r.scope("fleet.margin_aware.legacy.group0")
            .histogram("queue_delay_ms");
        r.scope("fleet.margin_aware.grizzly.group800")
            .histogram("exec_ms")
            .record(5);
        let mut md = String::new();
        render_queue_delays(&mut md, &r.snapshot());
        assert!(md.contains("## Queue delays"));
        assert!(md.contains("| scope | jobs | mean ms | p50 | p95 | p99 |"));
        // 99 samples in the 64..=127 bucket, one in 8192..=16383:
        // p50 = p95 = 127, p99 = 127 (99th of 100 is still the low
        // bucket), mean = 199.0.
        assert!(
            md.contains("| fleet.margin_aware.grizzly.group800 | 100 | 199.0 | 127 | 127 | 127 |"),
            "{md}"
        );
        assert!(!md.contains("legacy"), "{md}");
        assert!(!md.contains("exec_ms"), "{md}");
        let mut empty = String::new();
        render_queue_delays(&mut empty, &Snapshot::default());
        assert!(empty.is_empty());
    }

    #[test]
    fn health_section_renders_sparklines_and_incidents() {
        use telemetry::monitor::{Detector, IncidentLedger, Severity};
        use telemetry::series::SeriesStore;
        let dir = std::env::temp_dir().join("hdmr_report_health_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = SeriesStore::new();
        let s = store.series("health.demo.ce", 10);
        for (t, v) in [(5u64, 1u64), (15, 4), (25, 8), (35, 2)] {
            s.record(t, v);
        }
        let snap = store.snapshot();
        std::fs::write(dir.join("health.series.jsonl"), snap.to_jsonl()).unwrap();
        let detectors = [Detector::threshold(
            "thr",
            "health.demo.ce",
            Severity::Warning,
            4,
        )];
        let ledger = IncidentLedger::evaluate(&snap, &detectors);
        assert_eq!(ledger.len(), 1);
        std::fs::write(dir.join("health.incidents.jsonl"), ledger.to_jsonl()).unwrap();

        let mut md = String::new();
        render_health(&mut md, dir.to_str().unwrap(), "health").unwrap();
        assert!(md.contains("## Health"));
        assert!(md.contains("| series | windows | total | activity |"));
        // Sums 1/4/8/2 normalized to peak 8 -> bars 0,3,7,1.
        assert!(md.contains("| health.demo.ce | 4 | 15 | ▁▄█▂ |"), "{md}");
        assert!(md.contains("Incident ledger: 1 incident(s)"), "{md}");
        assert!(
            md.contains("| 1 | thr | health.demo.ce | warning |"),
            "{md}"
        );
        // A directory without exports renders nothing.
        let bare = dir.join("bare");
        std::fs::create_dir_all(&bare).unwrap();
        let mut empty = String::new();
        render_health(&mut empty, bare.to_str().unwrap(), "health").unwrap();
        assert!(empty.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn name_stem_buckets_families() {
        assert_eq!(name_stem("write_drain.ch3"), "write_drain");
        assert_eq!(name_stem("job.4711"), "job");
        assert_eq!(name_stem("sim.fmr.hpcg"), "sim");
        assert_eq!(name_stem("mode.read_enter"), "mode.read_enter");
        assert_eq!(name_stem("down_bin"), "down_bin");
        assert_eq!(name_stem("jobless"), "jobless");
    }
}
