//! Maps target names onto [`runner::Scenario`]s.
//!
//! Every figure/table is one scenario: a closure over a private
//! [`Ctx`] (own output buffer, own telemetry registry) built from the
//! command-line template, so the runner can execute any subset on any
//! number of worker threads and still print/merge results in canonical
//! order with byte-identical output.

use crate::context::Ctx;
use crate::{
    adaptive, characterization, extras, fleet, health, node_figures, power, system_figures, tables,
};
use runner::Scenario;

/// Every runnable target, in canonical (paper) order. Output and
/// merged metrics always follow this order regardless of `--jobs`.
pub const TARGETS: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "table2",
    "table3",
    "table4",
    "fig5",
    "fig6",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "energy",
    "configurator",
    "adaptive",
    "fleet",
    "health",
    "extras",
];

type TargetFn = fn(&mut Ctx);

/// The implementation behind a target name.
fn target_fn(name: &str) -> Option<TargetFn> {
    Some(match name {
        "table1" => tables::table1,
        "fig1" => characterization::fig1,
        "fig2" => characterization::fig2,
        "fig3" => characterization::fig3,
        "fig4" => characterization::fig4,
        "table2" => tables::table2,
        "table3" => tables::table3,
        "table4" => tables::table4,
        "fig5" => node_figures::fig5,
        "fig6" => characterization::fig6,
        "fig11" => system_figures::fig11,
        "fig12" => node_figures::fig12,
        "fig13" => node_figures::fig13,
        "fig14" => node_figures::fig14,
        "fig15" => node_figures::fig15,
        "fig16" => node_figures::fig16,
        "fig17" => system_figures::fig17,
        "energy" => power::energy,
        "configurator" => power::configurator,
        "adaptive" => adaptive::adaptive,
        "fleet" => fleet::fleet_target,
        "health" => health::health,
        "extras" => extras::extras,
        _ => return None,
    })
}

/// Whether `name` is a runnable target.
pub fn is_target(name: &str) -> bool {
    target_fn(name).is_some()
}

/// Builds one scenario per name from the command-line template
/// context. Callers must have validated the names via [`is_target`].
pub fn build(template: &Ctx, names: &[&str]) -> Vec<Scenario> {
    names
        .iter()
        .map(|name| {
            let f = target_fn(name).unwrap_or_else(|| panic!("unknown target '{name}'"));
            let mut ctx = template.for_task();
            let mut b = Scenario::builder(*name).derived_seed(template.seed);
            if let Some(t) = &ctx.tracer {
                b = b.tracer(t.clone());
            }
            b.task(move |tc| {
                f(&mut ctx);
                tc.out = std::mem::take(&mut ctx.out);
                tc.snapshot = ctx.registry.as_ref().map(|r| r.snapshot());
                tc.series = ctx.series.as_ref().map(|s| s.snapshot());
                if let Some(r) = &ctx.registry {
                    let log = r.events();
                    tc.events_recorded = log.total_pushed();
                    tc.events_dropped = log.dropped();
                    tc.events = log.drain_snapshot();
                }
            })
            .build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_target_resolves() {
        for name in TARGETS {
            assert!(is_target(name), "{name} has no implementation");
        }
        assert!(!is_target("fig99"));
        assert!(!is_target("all"), "'all' expands before dispatch");
    }

    #[test]
    fn scenarios_carry_name_and_derived_seed() {
        let ctx = Ctx::default();
        let s = build(&ctx, &["fig1", "fig12"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name(), "fig1");
        assert_eq!(s[1].name(), "fig12");
        assert_eq!(s[0].seed(), runner::seed::target_seed(ctx.seed, "fig1"));
        assert_ne!(s[0].seed(), s[1].seed(), "per-target streams differ");
    }

    #[test]
    fn table1_scenario_produces_the_table() {
        let mut ctx = Ctx::default();
        ctx.quick();
        let outcomes = runner::Runner::new(1).run(build(&ctx, &["table1"]));
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].is_failed());
        assert!(outcomes[0].out.contains("DRAM type"));
    }
}
