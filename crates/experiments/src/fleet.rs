//! Fleet-scale federated scheduling (ROADMAP follow-on): ≥10 M
//! streamed jobs across a heterogeneous federation, comparing the
//! margin-aware placement policy against a capacity-weighted
//! (margin-oblivious) one.
//!
//! Unlike the figure targets, nothing here materializes a trace: jobs
//! are drawn from a counter-seeded [`SyntheticJobs`] stream, each
//! federation shard regenerates and filters the stream independently,
//! and per-cluster results fold into O(1)-memory [`StreamSummary`]s —
//! so the 10 M-job default runs in flat RSS and is byte-identical at
//! any `--jobs` value.

use crate::context::{say, Ctx};
use scheduler::{
    Cluster as HpcCluster, ClusterSpec, Federation, FederationRun, PlacementPolicy,
    SchedulerConfig, SpeedupModel,
};
use workloads::jobs::SyntheticJobs;
use workloads::utilization::{Cluster as LanlCluster, UtilizationModel};

/// Offered utilization the fleet stream targets (the paper reports
/// ~78 % for Grizzly; a touch lower keeps every member stable under
/// both placements).
const FLEET_UTILIZATION: f64 = 0.75;

/// Widest job the stream may emit; at or below the smallest member so
/// any member can host any job.
const FLEET_MAX_NODES: u32 = 512;

/// The federation under study: four margin-binned generations plus a
/// conventional legacy system. Group mixes come from the margin
/// Monte-Carlo (Grizzly's 62/36/2 from Figure 11, the rest from the
/// PR-7 generation sweep); speedup tables are per-generation
/// node-model suite averages, low/mid usage buckets.
fn fleet() -> Federation {
    let member = |name: &str, nodes: u32, groups: [f64; 3], at_800: [f64; 2], at_600: [f64; 2]| {
        ClusterSpec::new(
            name,
            HpcCluster::new(nodes, groups),
            SchedulerConfig::builder()
                .margin_aware()
                .speedups(SpeedupModel { at_800, at_600 })
                .build()
                .expect("fleet speedup tables are consistent"),
        )
    };
    Federation::new(vec![
        member(
            "grizzly",
            1_490,
            [0.62, 0.36, 0.02],
            [1.10, 1.06],
            [1.07, 1.04],
        ),
        member(
            "badger",
            660,
            [0.45, 0.40, 0.15],
            [1.08, 1.05],
            [1.05, 1.03],
        ),
        member(
            "ddr5",
            1_024,
            [0.70, 0.25, 0.05],
            [1.13, 1.08],
            [1.08, 1.05],
        ),
        member(
            "mrdimm",
            512,
            [0.85, 0.10, 0.05],
            [1.16, 1.10],
            [1.10, 1.06],
        ),
        // Sized so conventional capacity (legacy plus the margin
        // members' no-margin slices, ~26 % of the fleet) tracks the
        // ~25 % Hetero-DMR-ineligible job share: the aware placement
        // then redirects load without congesting either side.
        ClusterSpec::new(
            "legacy",
            HpcCluster::conventional(1_024),
            SchedulerConfig::default(),
        ),
    ])
    .expect("fleet members are valid")
}

/// The `fleet` target: run the federation under both placement
/// policies and report per-member and fleet-wide streaming summaries.
pub fn fleet_target(ctx: &mut Ctx) {
    let fed = fleet();
    let jobs = ctx.fleet_jobs();
    let stream = SyntheticJobs {
        jobs,
        max_nodes: FLEET_MAX_NODES,
        capacity_nodes: fed.total_nodes() as f64,
        target_utilization: FLEET_UTILIZATION,
        utilization: UtilizationModel::for_cluster(LanlCluster::Grizzly),
    };
    say!(
        ctx,
        "federation: {} member(s), {} nodes, {} streamed job(s), offered utilization {:.2}",
        fed.members().len(),
        fed.total_nodes(),
        jobs,
        FLEET_UTILIZATION
    );

    let mut rows = vec![vec![
        "placement".into(),
        "member".into(),
        "nodes".into(),
        "jobs".into(),
        "utilization".into(),
        "mean_queue_s".into(),
        "p99_queue_s".into(),
        "mean_turnaround_s".into(),
    ]];
    let mut runs: Vec<(PlacementPolicy, FederationRun)> = Vec::new();
    for placement in [
        PlacementPolicy::CapacityWeighted,
        PlacementPolicy::MarginAware,
    ] {
        let scope = ctx.metrics_scope(&format!("fleet.{}", placement.label()));
        let series_prefix = format!("fleet.{}", placement.label());
        let run = fed.run_observed(
            placement,
            ctx.seed,
            || scheduler::from_specs(stream.stream(ctx.seed)),
            scope.as_ref(),
            ctx.tracer.as_ref(),
            ctx.series
                .as_ref()
                .map(|store| (store, series_prefix.as_str())),
        );
        say!(ctx, "\nplacement {}:", placement.label());
        say!(
            ctx,
            "  {:<10} {:>6} {:>10} {:>6} {:>13} {:>12} {:>12}",
            "member",
            "nodes",
            "jobs",
            "util",
            "mean_queue_s",
            "p99_queue_s",
            "turnaround_s"
        );
        for (spec, m) in fed.members().iter().zip(&run.members) {
            say!(
                ctx,
                "  {:<10} {:>6} {:>10} {:>5.1}% {:>13.1} {:>12.1} {:>12.1}",
                m.name,
                spec.cluster.nodes(),
                m.routed,
                m.utilization * 100.0,
                m.summary.mean_queue_s(),
                m.summary.queue_quantile_s(0.99),
                m.summary.mean_turnaround_s()
            );
            rows.push(vec![
                placement.label().into(),
                m.name.clone(),
                spec.cluster.nodes().to_string(),
                m.routed.to_string(),
                format!("{:.4}", m.utilization),
                format!("{:.2}", m.summary.mean_queue_s()),
                format!("{:.2}", m.summary.queue_quantile_s(0.99)),
                format!("{:.2}", m.summary.mean_turnaround_s()),
            ]);
        }
        let f = &run.fleet;
        let [g800, g600, g0] = f.started_per_group();
        say!(
            ctx,
            "  fleet: {} job(s) ({} backfilled), starts {g800}/{g600}/{g0} per margin group",
            f.jobs(),
            f.backfilled()
        );
        say!(
            ctx,
            "  fleet: exec {:.1} s, queue {:.1} s (p50 {:.1}, p99 {:.1}), turnaround {:.1} s",
            f.mean_exec_s(),
            f.mean_queue_s(),
            f.queue_quantile_s(0.50),
            f.queue_quantile_s(0.99),
            f.mean_turnaround_s()
        );
        rows.push(vec![
            placement.label().into(),
            "fleet".into(),
            fed.total_nodes().to_string(),
            f.jobs().to_string(),
            format!("{:.4}", f.utilization(fed.total_nodes() as f64)),
            format!("{:.2}", f.mean_queue_s()),
            format!("{:.2}", f.queue_quantile_s(0.99)),
            format!("{:.2}", f.mean_turnaround_s()),
        ]);
        runs.push((placement, run));
    }

    let oblivious = &runs[0].1.fleet;
    let aware = &runs[1].1.fleet;
    let speedup = aware.turnaround_speedup_over(oblivious);
    let margin_share = |s: &scheduler::StreamSummary| {
        let [g800, g600, g0] = s.started_per_group();
        (g800 + g600) as f64 / (g800 + g600 + g0).max(1) as f64
    };
    say!(
        ctx,
        "\nmargin-aware over capacity-weighted placement: {:.3}x turnaround, \
         margin-group start share {:.1}% -> {:.1}%",
        speedup,
        margin_share(oblivious) * 100.0,
        margin_share(aware) * 100.0
    );
    ctx.summary("fleet.jobs", jobs as f64);
    ctx.summary("fleet.aware_turnaround_speedup", speedup);
    ctx.summary("fleet.aware_margin_start_share", margin_share(aware));
    ctx.summary(
        "fleet.oblivious_margin_start_share",
        margin_share(oblivious),
    );
    ctx.csv("fleet", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_members_are_heterogeneous_and_host_every_job() {
        let fed = fleet();
        assert!(fed.members().len() >= 4, "acceptance: >=4 clusters");
        for m in fed.members() {
            assert!(
                m.cluster.nodes() >= FLEET_MAX_NODES,
                "{} cannot host the widest job",
                m.name
            );
        }
        // Margin capacity share roughly tracks the ~75 % eligible-job
        // share, so the aware placement cannot drown one member.
        let margin: u64 = fed
            .members()
            .iter()
            .map(|m| {
                let g = m.cluster.group_sizes();
                (g[0] + g[1]) as u64
            })
            .sum();
        let share = margin as f64 / fed.total_nodes() as f64;
        assert!((0.6..0.9).contains(&share), "margin capacity share {share}");
    }

    #[test]
    fn quick_fleet_run_reports_both_placements() {
        let mut ctx = Ctx::default();
        ctx.quick();
        ctx.fleet_jobs = Some(5_000);
        fleet_target(&mut ctx);
        assert!(ctx.out.contains("placement capacity_weighted:"));
        assert!(ctx.out.contains("placement margin_aware:"));
        assert!(ctx.out.contains("margin-aware over capacity-weighted"));
        for name in ["grizzly", "badger", "ddr5", "mrdimm", "legacy"] {
            assert!(
                ctx.out.contains(name),
                "member {name} missing:\n{}",
                ctx.out
            );
        }
    }
}
