//! Characterization-study figures (1–4, 6).

use crate::context::{say, Ctx};
use margin::errors::TestCondition;
use margin::population::ModulePopulation;
use margin::stats::{mean, Histogram};
use margin::study;
use workloads::utilization::{Cluster, UtilizationModel};

/// Figure 1: fraction of jobs below 25 % / 50 % memory utilization.
pub fn fig1(ctx: &mut Ctx) {
    say!(ctx, "{:<10} {:>8} {:>8}", "Cluster", "<25%", "<50%");
    let mut rows = vec![vec!["cluster".into(), "below_25".into(), "below_50".into()]];
    for cluster in Cluster::ALL {
        let m = UtilizationModel::for_cluster(cluster);
        say!(
            ctx,
            "{:<10} {:>7.0}% {:>7.0}%",
            cluster.name(),
            m.below_25 * 100.0,
            m.below_50 * 100.0
        );
        rows.push(vec![
            cluster.name().into(),
            format!("{:.3}", m.below_25),
            format!("{:.3}", m.below_50),
        ]);
    }
    ctx.csv("fig1", &rows);
}

/// Figure 2: frequency margins across the 119-module population, in
/// MT/s (a) and normalized to the labelled rate (b).
pub fn fig2(ctx: &mut Ctx) {
    let pop = ModulePopulation::paper_study(ctx.seed);
    let mut hist = Histogram::new(0.0, 200.0);
    for m in pop.modules() {
        hist.add(m.measured_margin_mts as f64);
    }
    say!(
        ctx,
        "(a) margin histogram, 200 MT/s buckets (all 119 modules):"
    );
    let mut rows = vec![vec!["bucket_mts".into(), "modules".into()]];
    for (lo, count) in hist.buckets() {
        if count > 0 {
            say!(
                ctx,
                "  [{:>4.0}, {:>4.0}) MT/s : {:>3} modules  {}",
                lo,
                lo + 200.0,
                count,
                "#".repeat(count as usize)
            );
        }
        rows.push(vec![format!("{lo}"), count.to_string()]);
    }
    let margins: Vec<f64> = pop
        .mainstream()
        .map(|m| m.measured_margin_mts as f64)
        .collect();
    let normalized: Vec<f64> = pop
        .mainstream()
        .map(|m| m.normalized_margin() * 100.0)
        .collect();
    say!(
        ctx,
        "(b) brands A-C: mean margin {:.0} MT/s = {:.1}% of labelled rate (paper: 770 MT/s / 27%)",
        mean(&margins),
        mean(&normalized)
    );
    say!(
        ctx,
        "    most common margin: {:?} MT/s (paper: 800 MT/s)",
        hist.mode_bucket()
    );
    if let Some(bucket) = hist.mode_bucket() {
        ctx.summary("fig2.mode_bucket_mts", bucket);
    }
    ctx.csv("fig2", &rows);
}

/// Figure 3: impact of brand (99 % CI) and chips/rank (STDev).
pub fn fig3(ctx: &mut Ctx) {
    let pop = ModulePopulation::paper_study(ctx.seed);
    let mut rows = vec![vec![
        "group".into(),
        "n".into(),
        "mean_mts".into(),
        "ci99_mts".into(),
        "stdev_mts".into(),
    ]];
    say!(ctx, "(a) by brand (mean ± 99% CI):");
    for g in study::by_brand(&pop) {
        say!(
            ctx,
            "  {:<22} n={:<3} {:>5.0} ± {:>4.0} MT/s",
            g.label,
            g.count,
            g.mean_mts,
            g.ci99_mts
        );
        rows.push(vec![
            g.label.clone(),
            g.count.to_string(),
            format!("{:.1}", g.mean_mts),
            format!("{:.1}", g.ci99_mts),
            format!("{:.1}", g.std_dev_mts),
        ]);
    }
    say!(ctx, "(b) by chips/rank (mean, STDev):");
    for g in study::by_chips_per_rank(&pop) {
        say!(
            ctx,
            "  {:<22} n={:<3} {:>5.0} MT/s, STDev {:>4.0}",
            g.label,
            g.count,
            g.mean_mts,
            g.std_dev_mts
        );
        rows.push(vec![
            g.label.clone(),
            g.count.to_string(),
            format!("{:.1}", g.mean_mts),
            format!("{:.1}", g.ci99_mts),
            format!("{:.1}", g.std_dev_mts),
        ]);
    }
    ctx.csv("fig3", &rows);
}

/// Figure 4: impact of aging, ranks/module, density, manufacture year.
pub fn fig4(ctx: &mut Ctx) {
    let pop = ModulePopulation::paper_study(ctx.seed);
    let mut rows = vec![vec![
        "panel".into(),
        "group".into(),
        "n".into(),
        "mean_mts".into(),
    ]];
    for (panel, groups) in [
        ("(a) condition", study::by_condition(&pop)),
        ("(b) ranks/module", study::by_ranks(&pop)),
        ("(c) chip density", study::by_density(&pop)),
        ("(d) manufacture year", study::by_year(&pop)),
    ] {
        say!(ctx, "{panel}:");
        for g in groups {
            if g.count == 0 {
                continue;
            }
            say!(
                ctx,
                "  {:<24} n={:<3} {:>5.0} MT/s",
                g.label,
                g.count,
                g.mean_mts
            );
            if panel == "(a) condition" && g.label == "Brand new" {
                ctx.summary("fig4.brand_new_mean_mts", g.mean_mts);
            }
            rows.push(vec![
                panel.into(),
                g.label.clone(),
                g.count.to_string(),
                format!("{:.1}", g.mean_mts),
            ]);
        }
    }
    say!(ctx, "(paper finding: none of these factors matters much)");
    ctx.csv("fig4", &rows);
}

/// Figure 6: per-module error rates under the four stress conditions.
pub fn fig6(ctx: &mut Ctx) {
    let pop = ModulePopulation::paper_study(ctx.seed);
    let mut rows = vec![vec![
        "module".into(),
        "ce_freq_23c".into(),
        "ce_freq_45c".into(),
        "ce_freqlat_23c".into(),
        "ce_freqlat_45c".into(),
        "ue_freq_23c".into(),
    ]];
    let mut shown = 0;
    say!(
        ctx,
        "{:<6} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "Module",
        "CE f@23C/h",
        "CE f@45C/h",
        "CE f+l@23C/h",
        "CE f+l@45C/h",
        "UE@23C/h"
    );
    for m in pop.mainstream() {
        let e = &m.errors;
        rows.push(vec![
            m.spec.label(),
            format!("{:.1}", e.ce_per_hour(TestCondition::Freq23C)),
            format!("{:.1}", e.ce_per_hour(TestCondition::Freq45C)),
            format!("{:.1}", e.ce_per_hour(TestCondition::FreqLat23C)),
            format!("{:.1}", e.ce_per_hour(TestCondition::FreqLat45C)),
            format!("{:.2}", e.ue_per_hour(TestCondition::Freq23C)),
        ]);
        // Like the paper's figure, skip all-zero modules; print a
        // sample of the rest.
        if !e.error_free(TestCondition::Freq23C) && shown < 15 {
            say!(
                ctx,
                "{:<6} {:>12.1} {:>12.1} {:>14.1} {:>14.1} {:>10.2}",
                m.spec.label(),
                e.ce_per_hour(TestCondition::Freq23C),
                e.ce_per_hour(TestCondition::Freq45C),
                e.ce_per_hour(TestCondition::FreqLat23C),
                e.ce_per_hour(TestCondition::FreqLat45C),
                e.ue_per_hour(TestCondition::Freq23C)
            );
            shown += 1;
        }
    }
    // Population-level ratios the paper highlights.
    let sum = |c: TestCondition| -> f64 { pop.mainstream().map(|m| m.errors.ce_per_hour(c)).sum() };
    let f23 = sum(TestCondition::Freq23C);
    let f45 = sum(TestCondition::Freq45C);
    let fl23 = sum(TestCondition::FreqLat23C);
    let fl45 = sum(TestCondition::FreqLat45C);
    say!(
        ctx,
        "... ({} more modules; zero-error modules omitted as in the paper)",
        103 - shown
    );
    say!(
        ctx,
        "freq-only   45C/23C error ratio: {:.1}x (paper: 4x)",
        f45 / f23
    );
    say!(
        ctx,
        "freq+lat    45C/23C error ratio: {:.1}x (paper: 2x)",
        fl45 / fl23
    );
    let reduced = pop
        .mainstream()
        .filter(|m| m.margin_at_45c_mts < m.measured_margin_mts)
        .count();
    let reduced_lat = pop
        .mainstream()
        .filter(|m| m.freq_lat_margin_at_45c_mts < m.measured_margin_mts)
        .count();
    say!(ctx, "modules with reduced margin at 45C: {reduced} (paper: 5); with latency margins: {reduced_lat} (paper: 9)");
    ctx.csv("fig6", &rows);
}
