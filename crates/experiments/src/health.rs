//! The `health` target: the streaming health plane, end to end.
//!
//! Drives the closed-loop [`AdaptiveGovernor`] through two disturbance
//! scenarios — a slowly degrading module and a machine-room cooling
//! failure — while its series tap streams per-epoch CE/UE/bin rollups
//! into a [`SeriesStore`]. The detector suite then walks the windows
//! and the breaches fold into a causal [`IncidentLedger`] with the
//! governor's own trace spans linked into each incident.
//!
//! The headline: on the slow-degradation module the CUSUM change-point
//! detector opens an incident **epochs before** the governor's
//! UE-driven retreat. The governor only reacts once an uncorrectable
//! error lands; the health plane sees the correctable-error drift while
//! the margin is still safe, which is exactly the maintenance window an
//! operator wants. The run asserts that lead is at least one epoch.
//!
//! With `--series DIR` the windowed rollups land in
//! `DIR/health.series.jsonl` (via the shared exporter) and the ledger
//! in `DIR/health.incidents.jsonl`; both are byte-identical for any
//! `--jobs` value. Incident span ids index the governor's own
//! per-scenario trace buffer (the `spans` column names them inline).

use crate::context::{say, Ctx};
use hetero_dmr::adaptive::{
    run_closed_loop, AdaptiveConfig, AdaptiveGovernor, AgingDrift, Decision, Environment,
    EpochRecord, MarginResponse, BIN_MTS,
};
use hetero_dmr::governor::EPOCH_PS;
use margin::stress::{measure_margin, StressConfig};
use margin::temperature::TemperatureTransient;
use runner::seed::task_seed;
use std::collections::HashMap;
use telemetry::monitor::{Detector, IncidentLedger, IncidentState, Severity};
use telemetry::trace::{Clock, Tracer};
use workloads::{PhaseSchedule, Suite};

/// One monitored scenario: a disturbance environment plus the governor
/// configuration it runs under.
struct ScenarioDef {
    name: &'static str,
    env: Environment,
    config: AdaptiveConfig,
    /// Detectors watching this scenario's series (scopes already
    /// prefixed `health.<name>.`).
    detectors: Vec<Detector>,
}

/// The two scenarios and their detector suites.
///
/// The slow-degradation governor gets a deliberately complacent config
/// (its CE weaken threshold is far above anything the drift produces),
/// so the *only* signal it acts on is the first uncorrectable error —
/// the worst case the health plane is meant to beat. The cooling
/// failure runs under the production defaults.
fn scenario_defs(epochs: u64, static_bin: u8) -> Vec<ScenarioDef> {
    vec![
        ScenarioDef {
            name: "slow-degradation",
            env: Environment {
                temperature: TemperatureTransient::steady(margin::AmbientTemperature::Room23C),
                excursion_margin_loss_mts: 0,
                // Compressed wear-out: ~12 MT/s of true margin lost per
                // epoch, a bin every ~17 hours.
                aging: AgingDrift {
                    mts_per_kilo_epoch: 12_000,
                    onset_epoch: 0,
                },
                phases: PhaseSchedule::steady(Suite::Hpcg),
            },
            config: AdaptiveConfig::new(100, 10_000_000, 2, 12, static_bin, 2),
            detectors: vec![
                Detector::cusum(
                    "cusum.ce",
                    "health.slow-degradation.ce",
                    Severity::Warning,
                    2_000_000,  // k: drift allowance, 2 000 CE/epoch
                    20_000_000, // h: alarm at 20 000 accumulated excess CE
                ),
                Detector::ewma(
                    "ewma.ce",
                    "health.slow-degradation.ce",
                    Severity::Warning,
                    300,       // alpha 0.3
                    2_000_000, // band: 2 000 CE above the running mean
                    6,
                ),
                Detector::threshold(
                    "ue.any",
                    "health.slow-degradation.ue",
                    Severity::Critical,
                    1,
                ),
            ],
        },
        ScenarioDef {
            name: "temp-transient",
            env: Environment {
                // Cooling failure for the middle quarter of the run,
                // expressed as two bins of margin loss while hot.
                temperature: TemperatureTransient::cooling_failure(epochs / 4, epochs / 4),
                excursion_margin_loss_mts: 2 * BIN_MTS,
                aging: AgingDrift::none(),
                phases: PhaseSchedule::steady(Suite::Hpcg),
            },
            config: AdaptiveConfig::defaults(static_bin),
            detectors: vec![
                Detector::ewma(
                    "ewma.ce",
                    "health.temp-transient.ce",
                    Severity::Warning,
                    300,
                    2_000_000,
                    4,
                ),
                Detector::burn_rate(
                    "burn.ce",
                    "health.temp-transient.ce",
                    Severity::Warning,
                    1_000, // CE budget per epoch window
                    8,     // rolling 8-epoch SLO
                    1_000, // alarm at 1.0x burn
                ),
                Detector::threshold("ue.any", "health.temp-transient.ue", Severity::Critical, 1),
            ],
        },
    ]
}

/// One row of the lead-time narrative table.
struct NarrativeRow {
    scenario: String,
    /// Earliest incident: `(epoch, detector name)`.
    first_alarm: Option<(u64, String)>,
    first_retreat: Option<u64>,
}

/// First epoch (if any) in which the governor retreated.
fn first_retreat(records: &[EpochRecord]) -> Option<u64> {
    records
        .iter()
        .find(|r| matches!(r.decision, Decision::Retreat { .. }))
        .map(|r| r.epoch)
}

/// `"governor.retreat@22+governor.step@35"` for an incident's linked
/// span ids, resolved against the scenario's own trace buffer.
fn span_labels(spans: &[u64], names: &HashMap<u64, String>) -> String {
    if spans.is_empty() {
        return "-".into();
    }
    spans
        .iter()
        .filter_map(|id| names.get(id).cloned())
        .collect::<Vec<_>>()
        .join("+")
}

/// The `health` target.
pub fn health(ctx: &mut Ctx) {
    let epochs: u64 = if ctx.quick_run { 48 } else { 96 };

    // The series store the governor taps stream into: the `--series`
    // store when one is on, a private one otherwise — the detector
    // suite and ledger run (and assert) either way.
    let store = ctx.series.clone().unwrap_or_default();

    // Same offline stress-test envelope as the adaptive ablation.
    let stress = StressConfig::default();
    let static_margin = measure_margin(dram::rate::DataRate::MT3200, 600, &stress);
    let static_bin = (static_margin / BIN_MTS) as u8;
    let response = MarginResponse::typical(600);

    say!(
        ctx,
        "Streaming health plane ({} one-hour epochs, stress-test bin {}):",
        epochs,
        static_bin
    );

    let defs = scenario_defs(epochs, static_bin);
    let mut ledger = IncidentLedger::default();
    // Per-scenario: (series prefix, span-id -> label) for rendering the
    // ledger's linked spans, plus the narrative rows.
    let mut span_names: Vec<(String, HashMap<u64, String>)> = Vec::new();
    let mut narrative: Vec<NarrativeRow> = Vec::new();
    let mut slow_lead: Option<i64> = None;

    for (idx, def) in defs.iter().enumerate() {
        let prefix = format!("health.{}", def.name);
        let mut governor = AdaptiveGovernor::new(def.config);
        governor.attach_series(&store, &prefix);
        if let Some(scope) = ctx.metrics_scope(&prefix) {
            governor.attach_telemetry(&scope);
        }
        // A scenario-local tracer: its buffer indexes are what the
        // ledger's span links refer to (deterministic regardless of
        // what else the task traces). The events are absorbed into the
        // task tracer afterwards when `--trace` is on.
        let local = Tracer::new();
        governor.set_tracer(local.clone());

        let records = run_closed_loop(
            &mut governor,
            &response,
            &def.env,
            task_seed(ctx.seed, "health.online", idx as u64),
            epochs,
        );
        let events = local.take();

        // Evaluate this scenario's detectors on its own sub-ledger so
        // span linking only sees this governor's spans (both scenarios
        // share the sim-time axis), then fold into the combined ledger
        // in canonical scenario order.
        let mut sub = IncidentLedger::evaluate(&store.snapshot(), &def.detectors);
        sub.link_spans(&events, Clock::SimPs);
        let names: HashMap<u64, String> = events
            .iter()
            .map(|ev| (ev.id, format!("{}@{}", ev.name, ev.start / EPOCH_PS)))
            .collect();

        let first_alarm = sub
            .incidents()
            .iter()
            .map(|inc| (inc.first / EPOCH_PS, inc.detector.clone()))
            .min();
        let retreat = first_retreat(&records);
        if def.name == "slow-degradation" {
            let cusum_open = sub
                .incidents()
                .iter()
                .find(|inc| inc.detector == "cusum.ce")
                .map(|inc| inc.first / EPOCH_PS)
                .expect("slow degradation must trip the CUSUM detector");
            let retreat = retreat.expect("slow degradation must eventually force a UE retreat");
            let lead = retreat as i64 - cusum_open as i64;
            assert!(
                lead >= 1,
                "CUSUM must lead the governor's UE retreat by >= 1 epoch \
                 (alarm at epoch {cusum_open}, retreat at epoch {retreat})"
            );
            slow_lead = Some(lead);
        }
        narrative.push(NarrativeRow {
            scenario: def.name.to_string(),
            first_alarm,
            first_retreat: retreat,
        });
        span_names.push((format!("{prefix}."), names));
        ledger.absorb(sub);

        if let Some(t) = &ctx.tracer {
            t.absorb(events);
        }

        ctx.summary(
            &format!("{prefix}.ue_total"),
            records.iter().map(|r| r.ue).sum::<u64>() as f64,
        );
    }

    // Operator lifecycle demo: acknowledge the first still-open
    // incident (the ledger keeps the note; the JSONL export carries
    // the state).
    let first_open = ledger
        .incidents()
        .iter()
        .find(|inc| inc.state == IncidentState::Open)
        .map(|inc| inc.id);
    if let Some(id) = first_open {
        ledger.ack(id, "maintenance window scheduled");
    }

    say!(
        ctx,
        "{:<18} {:>12} {:<10} {:>14} {:>6}",
        "scenario",
        "first-alarm",
        "detector",
        "first-retreat",
        "lead"
    );
    for row in &narrative {
        let (alarm_e, det) = match &row.first_alarm {
            Some((e, d)) => (format!("epoch {e}"), d.clone()),
            None => ("-".into(), "-".into()),
        };
        let retreat_e = row
            .first_retreat
            .map_or("-".into(), |e| format!("epoch {e}"));
        let lead = match (&row.first_alarm, row.first_retreat) {
            (Some((a, _)), Some(r)) => format!("{:+}", r as i64 - *a as i64),
            _ => "-".into(),
        };
        say!(
            ctx,
            "{:<18} {:>12} {:<10} {:>14} {:>6}",
            row.scenario,
            alarm_e,
            det,
            retreat_e,
            lead
        );
    }
    say!(
        ctx,
        "CUSUM saw the slow drift {} epoch(s) before the governor's UE retreat",
        slow_lead.expect("slow-degradation ran")
    );

    say!(ctx, "incident ledger ({} incidents):", ledger.len());
    say!(
        ctx,
        "{:>3} {:<9} {:<28} {:<8} {:<8} {:>11} {:>4} {:>12} spans",
        "id",
        "detector",
        "scope",
        "severity",
        "state",
        "epochs",
        "win",
        "peak"
    );
    let mut rows = vec![vec![
        "id".into(),
        "detector".into(),
        "scope".into(),
        "severity".into(),
        "state".into(),
        "first_epoch".into(),
        "last_epoch".into(),
        "windows".into(),
        "peak_milli".into(),
        "spans".into(),
    ]];
    for inc in ledger.incidents() {
        let names = span_names
            .iter()
            .find(|(p, _)| inc.scope.starts_with(p.as_str()))
            .map(|(_, n)| n);
        let spans = names.map_or("-".into(), |n| span_labels(&inc.spans, n));
        let (first_e, last_e) = (inc.first / EPOCH_PS, inc.last / EPOCH_PS);
        say!(
            ctx,
            "{:>3} {:<9} {:<28} {:<8} {:<8} {:>5}..{:<4} {:>4} {:>12} {}",
            inc.id,
            inc.detector,
            inc.scope,
            inc.severity.label(),
            inc.state.label(),
            first_e,
            last_e,
            inc.windows,
            inc.peak_milli / 1_000,
            spans
        );
        rows.push(vec![
            inc.id.to_string(),
            inc.detector.clone(),
            inc.scope.clone(),
            inc.severity.label().into(),
            inc.state.label().into(),
            first_e.to_string(),
            last_e.to_string(),
            inc.windows.to_string(),
            inc.peak_milli.to_string(),
            spans,
        ]);
    }

    ctx.summary("health.incidents_total", ledger.len() as f64);
    ctx.summary("health.incidents_open", ledger.open_count() as f64);
    ctx.summary(
        "health.slow-degradation.cusum_lead_epochs",
        slow_lead.unwrap_or(0) as f64,
    );
    ctx.csv("health", &rows);

    // The ledger rides along with the series export.
    if let Some(dir) = &ctx.series_dir {
        if std::fs::create_dir_all(dir).is_err() {
            eprintln!("cannot create {dir}");
        } else {
            let path = format!("{dir}/health.incidents.jsonl");
            if let Err(e) = std::fs::write(&path, ledger.to_jsonl()) {
                eprintln!("cannot write {path}: {e}");
            }
        }
    }
}
