//! System-level figures: 11 (margin variability) and 17 (cluster
//! simulation).

use crate::context::{say, Ctx};
use energy::EnergyModel;
use hetero_dmr::monte_carlo::MonteCarlo;
use hetero_dmr::{EvalConfig, MemoryDesign, NodeModel};
use margin::composition::SelectionPolicy;
use memsim::config::HierarchyConfig;
use scheduler::{
    Cluster as HpcCluster, GrizzlyTrace, Policy, QueueTail, RunSummary, SchedulerConfig,
    SliceSource, SpeedupModel,
};
use workloads::utilization::{Cluster as LanlCluster, UtilizationModel};

/// Figure 11: channel- and node-level margin distributions under
/// margin-aware vs margin-unaware module selection.
pub fn fig11(ctx: &mut Ctx) {
    let mc = MonteCarlo::default();
    let mut rows = vec![vec![
        "level".into(),
        "policy".into(),
        "threshold_mts".into(),
        "fraction".into(),
    ]];
    say!(
        ctx,
        "{:<8} {:<15} {:>10} {:>10}",
        "level",
        "policy",
        ">=0.8GT/s",
        ">=0.6GT/s"
    );
    for (level, node) in [("channel", false), ("node", true)] {
        for (policy, name) in [
            (SelectionPolicy::MarginAware, "margin-aware"),
            (SelectionPolicy::MarginUnaware, "margin-unaware"),
        ] {
            let frac = |threshold: u32, salt: u64| {
                if node {
                    mc.node_fraction_at_least(policy, threshold, ctx.trials, ctx.seed ^ salt)
                } else {
                    mc.channel_fraction_at_least(policy, threshold, ctx.trials, ctx.seed ^ salt)
                }
            };
            let f800 = frac(800, 1);
            let f600 = frac(600, 2);
            say!(
                ctx,
                "{:<8} {:<15} {:>9.1}% {:>9.1}%",
                level,
                name,
                f800 * 100.0,
                f600 * 100.0
            );
            for (t, f) in [(800u32, f800), (600, f600)] {
                rows.push(vec![
                    level.into(),
                    name.into(),
                    t.to_string(),
                    format!("{f:.4}"),
                ]);
            }
        }
    }
    let groups = mc.node_groups(SelectionPolicy::MarginAware, ctx.trials, ctx.seed ^ 3);
    say!(
        ctx,
        "node groups (margin-aware): {:.0}% @0.8GT/s, {:.0}% @0.6GT/s, {:.0}% @0 (paper: 62/36/2)",
        groups.at_800 * 100.0,
        groups.at_600 * 100.0,
        groups.at_0 * 100.0
    );
    ctx.csv("fig11", &rows);
}

/// Figure 17: system-wide execution / queueing / turnaround.
///
/// Job speedups are *measured* from the node model (not hard-coded):
/// the Figure 12 usage-bucket numbers feed the cluster simulator.
pub fn fig17(ctx: &mut Ctx) {
    // Measure the per-(margin, bucket) speedups from the node model,
    // averaged over the two hierarchies as the paper does.
    let mut at_800 = [0.0f64; 2];
    let mut at_600 = [0.0f64; 2];
    for h in HierarchyConfig::both() {
        let mut m = NodeModel::new(
            h,
            EvalConfig {
                ops_per_core: ctx.ops_per_core,
                seed: ctx.seed,
                windows: ctx.windows,
            },
        );
        m.set_shared_cache(ctx.model_cache);
        if let Some(scope) = ctx.metrics_scope(&format!("node.{}", telemetry::slug(h.name))) {
            m.set_metrics_scope(scope);
        }
        if let Some(t) = &ctx.tracer {
            m.set_trace(t);
        }
        for (slot, bucket) in [
            (0, hetero_dmr::UsageBucket::Low),
            (1, hetero_dmr::UsageBucket::Mid),
        ] {
            at_800[slot] +=
                m.suite_average(MemoryDesign::HeteroDmr { margin_mts: 800 }, bucket) / 2.0;
            at_600[slot] +=
                m.suite_average(MemoryDesign::HeteroDmr { margin_mts: 600 }, bucket) / 2.0;
        }
    }
    let speedups = SpeedupModel { at_800, at_600 };
    say!(
        ctx,
        "node-model speedups fed to the scheduler: 0.8GT/s {:?}, 0.6GT/s {:?}",
        at_800,
        at_600
    );

    let trace = GrizzlyTrace {
        jobs: ctx.trace_jobs,
        ..GrizzlyTrace::default()
    }
    .generate(ctx.seed);
    let groups =
        MonteCarlo::default().node_groups(SelectionPolicy::MarginAware, ctx.trials, ctx.seed);
    let nodes = scheduler::trace::GRIZZLY_NODES;

    let conventional = HpcCluster::conventional(nodes);
    let hdmr = HpcCluster::new(nodes, [groups.at_800, groups.at_600, groups.at_0]);
    let plus17 = HpcCluster::conventional((nodes as f64 * 1.17).round() as u32);

    // With `--metrics`, each system variant records queue depth and
    // per-group latency histograms under its own `cluster.<label>`;
    // with `--trace`, each run adds a `schedule` span with per-job
    // child spans on the schedule clock.
    let run = |cluster: &HpcCluster, label: &str, policy: Policy, sp: &SpeedupModel| {
        let config = SchedulerConfig::builder()
            .policy(policy)
            .speedups(*sp)
            .build()
            .expect("measured speedup table is consistent");
        let scope = ctx.metrics_scope(&format!("cluster.{label}"));
        let mut run = cluster.schedule(SliceSource::new(&trace)).config(config);
        if let Some(scope) = &scope {
            run = run.metrics(scope);
        }
        if let Some(t) = &ctx.tracer {
            run = run.tracer(t);
        }
        run.run()
    };
    let conv_outcomes = run(
        &conventional,
        "conventional",
        Policy::Default,
        &SpeedupModel::conventional(),
    );
    let aware_outcomes = run(&hdmr, "hdmr_margin_aware", Policy::MarginAware, &speedups);
    let s_conv = RunSummary::from_outcomes(&conv_outcomes);
    let s_aware = RunSummary::from_outcomes(&aware_outcomes);
    let s_default = RunSummary::from_outcomes(&run(
        &hdmr,
        "hdmr_default_sched",
        Policy::Default,
        &speedups,
    ));
    let s_plus17 = RunSummary::from_outcomes(&run(
        &plus17,
        "conventional_plus17",
        Policy::Default,
        &SpeedupModel::conventional(),
    ));

    let mut rows = vec![vec![
        "system".into(),
        "norm_exec".into(),
        "norm_queue".into(),
        "norm_turnaround".into(),
        "turnaround_speedup".into(),
    ]];
    say!(
        ctx,
        "{:<28} {:>10} {:>10} {:>12} {:>10}",
        "system",
        "exec",
        "queueing",
        "turnaround",
        "speedup"
    );
    for (name, s) in [
        ("conventional", &s_conv),
        ("Hetero-DMR + margin-aware", &s_aware),
        ("Hetero-DMR + default sched", &s_default),
        ("conventional + 17% nodes", &s_plus17),
    ] {
        let (e, q, t) = s.normalized_to(&s_conv);
        if name == "Hetero-DMR + margin-aware" {
            ctx.summary(
                "fig17.aware_turnaround_speedup",
                s.turnaround_speedup_over(&s_conv),
            );
        }
        say!(
            ctx,
            "{:<28} {:>10.3} {:>10.3} {:>12.3} {:>9.3}x",
            name,
            e,
            q,
            t,
            s.turnaround_speedup_over(&s_conv)
        );
        rows.push(vec![
            name.into(),
            format!("{e:.4}"),
            format!("{q:.4}"),
            format!("{t:.4}"),
            format!("{:.4}", s.turnaround_speedup_over(&s_conv)),
        ]);
    }
    say!(
        ctx,
        "margin-aware over default scheduler: {:.3}x turnaround (paper: 1.2x)",
        s_default.mean_turnaround_s / s_aware.mean_turnaround_s
    );
    let conv_tail = QueueTail::from_outcomes(&conv_outcomes);
    let aware_tail = QueueTail::from_outcomes(&aware_outcomes);
    say!(ctx,
        "queueing tail (conventional -> Hetero-DMR): p50 {:.0}->{:.0}s, p95 {:.0}->{:.0}s, p99 {:.0}->{:.0}s",
        conv_tail.p50_s, aware_tail.p50_s, conv_tail.p95_s, aware_tail.p95_s, conv_tail.p99_s, aware_tail.p99_s
    );
    let _ = UtilizationModel::for_cluster(LanlCluster::Grizzly);
    let _ = EnergyModel::default();
    ctx.csv("fig17", &rows);
}
