//! The `adaptive` target: offline binning vs. online adaptation.
//!
//! The paper bins each module once with an offline stress test and
//! trusts that bin forever. This ablation confronts both policies
//! with the disturbances a deployment actually sees — a machine-room
//! cooling failure (via [`margin::temperature::TemperatureTransient`]),
//! aging drift, and workload phase changes — and reports, per
//! scenario, the time-weighted speedup and the error outcomes of:
//!
//! * **offline** — the stress-test bin, held for the whole run (the
//!   epoch SDC-budget governor still provides its fallback), and
//! * **online** — the closed-loop [`AdaptiveGovernor`] stepping one
//!   200 MT/s bin per epoch from observed CE/UE feedback, with the
//!   stress-test bin as its safety envelope.
//!
//! Epoch time is compressed: a full run covers 96 one-hour epochs (48
//! under `--quick`) with disturbance timescales scaled to match.
//! Per-epoch performance at bin *b* comes from the same `NodeModel`
//! evaluation the paper figures use (`Hetero-DMR@b·200 MT/s`,
//! normalized to the Commercial Baseline); bin 0 means the channel
//! runs at specification, i.e. baseline speed.

use crate::context::{say, Ctx};
use crate::node_figures::model;
use hetero_dmr::adaptive::{
    run_closed_loop, AdaptiveConfig, AdaptiveGovernor, AgingDrift, Environment, MarginResponse,
    BIN_MTS,
};
use hetero_dmr::governor::EpochGovernor;
use hetero_dmr::{MemoryDesign, NodeModel, UsageBucket};
use margin::stress::{measure_margin, sample_poisson, StressConfig};
use margin::temperature::TemperatureTransient;
use memsim::config::HierarchyConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use runner::seed::{iteration_seed, task_seed};
use telemetry::slug;
use workloads::{PhaseSchedule, Suite};

/// One disturbance scenario of the ablation.
struct ScenarioDef {
    name: &'static str,
    /// The silicon's true margin at baseline conditions, MT/s.
    true_margin_mts: u32,
    env: Environment,
}

/// The four scenarios: the offline assumption (steady), then one
/// disturbance axis at a time.
fn scenario_defs(epochs: u64) -> Vec<ScenarioDef> {
    vec![
        ScenarioDef {
            name: "steady",
            true_margin_mts: 600,
            env: Environment::steady(Suite::Hpcg),
        },
        ScenarioDef {
            name: "temp-transient",
            true_margin_mts: 600,
            env: Environment {
                // Cooling failure for the middle quarter of the run:
                // the chamber's ~4x error rates expressed as two bins
                // of margin loss while hot.
                temperature: TemperatureTransient::cooling_failure(epochs / 4, epochs / 4),
                excursion_margin_loss_mts: 2 * BIN_MTS,
                aging: AgingDrift::none(),
                phases: PhaseSchedule::steady(Suite::Hpcg),
            },
        },
        ScenarioDef {
            name: "aging-drift",
            true_margin_mts: 600,
            env: Environment {
                temperature: TemperatureTransient::steady(margin::AmbientTemperature::Room23C),
                excursion_margin_loss_mts: 0,
                // Compressed lifetime wear: ~6 MT/s of margin lost per
                // epoch, i.e. more than a bin over the full run.
                aging: AgingDrift {
                    mts_per_kilo_epoch: 6_000,
                    onset_epoch: 0,
                },
                phases: PhaseSchedule::steady(Suite::Hpcg),
            },
        },
        ScenarioDef {
            name: "phase-shift",
            true_margin_mts: 600,
            env: Environment {
                temperature: TemperatureTransient::steady(margin::AmbientTemperature::Room23C),
                excursion_margin_loss_mts: 0,
                aging: AgingDrift::none(),
                // Memory-bound and compute-bound jobs alternating in
                // 8-hour allocations: error exposure swings with the
                // phase while the silicon stays put.
                phases: PhaseSchedule::alternating(Suite::Hpcg, Suite::Npb, 8),
            },
        },
    ]
}

/// What one policy did over one scenario.
struct PolicyOutcome {
    speedup: f64,
    ce: u64,
    ue: u64,
    fallbacks: u64,
    /// `(up, down, retreats)` — zero for the offline policy.
    steps: (u64, u64, u64),
}

/// Per-epoch speedup at `bin` running `suite`, degraded by the SDC
/// budget governor's expected fallback fraction for that epoch's CE
/// count. Bin 0 is the specification operating point (baseline 1.0).
fn epoch_speedup(m: &NodeModel, budget: &EpochGovernor, bin: u8, suite: Suite, ce: u64) -> f64 {
    if bin == 0 {
        return 1.0;
    }
    let exploiting = m.normalized(
        MemoryDesign::HeteroDmr {
            margin_mts: bin as u32 * BIN_MTS,
        },
        suite,
        UsageBucket::Low,
    );
    let active = budget.expected_active_fraction(ce as f64);
    active * exploiting + (1.0 - active)
}

/// The offline policy: hold `bin` for the whole run, counting the
/// errors that conditions inflict on it. Same counter-based RNG
/// discipline as [`run_closed_loop`], on its own stream.
fn run_offline(
    bin: u8,
    response: &MarginResponse,
    env: &Environment,
    seed: u64,
    epochs: u64,
    budget: &mut EpochGovernor,
) -> Vec<(u64, u64)> {
    let margin_mts = bin as u32 * BIN_MTS;
    (0..epochs)
        .map(|epoch| {
            let d = env.disturbance_at(epoch);
            let (lambda_ce, lambda_ue) = response.lambda(margin_mts, d);
            let mut rng = StdRng::seed_from_u64(iteration_seed(seed, epoch));
            let ce = sample_poisson(&mut rng, lambda_ce);
            let ue = sample_poisson(&mut rng, lambda_ue);
            budget.record_errors(epoch * hetero_dmr::governor::EPOCH_PS, ce);
            (ce, ue)
        })
        .collect()
}

/// The `adaptive` target.
pub fn adaptive(ctx: &mut Ctx) {
    let epochs: u64 = if ctx.quick_run { 48 } else { 96 };
    let h = HierarchyConfig::hierarchy1();
    let m = model(ctx, h);

    // The shared offline stress-test selection: both the static bin
    // and the online governor's safety envelope derive from it.
    let stress = StressConfig::default();
    let defs = scenario_defs(epochs);

    say!(
        ctx,
        "Adaptive margin governor vs offline binning ({}, {} one-hour epochs):",
        h.name,
        epochs
    );
    say!(
        ctx,
        "{:<15} {:<8} {:>8} {:>10} {:>5} {:>9} {:>15}",
        "scenario",
        "policy",
        "perf",
        "CE",
        "UE",
        "budget-exh",
        "up/down/retreat"
    );

    let mut rows = vec![vec![
        "scenario".into(),
        "policy".into(),
        "speedup".into(),
        "ce".into(),
        "ue".into(),
        "fallbacks".into(),
        "steps_up".into(),
        "steps_down".into(),
        "retreats".into(),
    ]];
    let mut offline_ue_total = 0u64;
    let mut online_ue_total = 0u64;

    for (idx, def) in defs.iter().enumerate() {
        let response = MarginResponse::typical(def.true_margin_mts);
        let static_margin =
            measure_margin(dram::rate::DataRate::MT3200, def.true_margin_mts, &stress);
        let static_bin = (static_margin / BIN_MTS) as u8;

        // Offline: the stress-test bin, held against the weather.
        let mut offline_budget = EpochGovernor::default();
        if let Some(scope) = ctx.metrics_scope(&format!("adaptive.{}.offline", slug(def.name))) {
            offline_budget.attach_telemetry(&scope);
        }
        let off_trace = run_offline(
            static_bin,
            &response,
            &def.env,
            task_seed(ctx.seed, "adaptive.offline", idx as u64),
            epochs,
            &mut offline_budget,
        );
        let offline = PolicyOutcome {
            speedup: off_trace
                .iter()
                .enumerate()
                .map(|(e, &(ce, _))| {
                    let suite = def.env.phases.suite_at(e as u64);
                    epoch_speedup(&m, &offline_budget, static_bin, suite, ce)
                })
                .sum::<f64>()
                / epochs as f64,
            ce: off_trace.iter().map(|&(ce, _)| ce).sum(),
            ue: off_trace.iter().map(|&(_, ue)| ue).sum(),
            fallbacks: offline_budget.fallbacks(),
            steps: (0, 0, 0),
        };

        // Online: the closed loop, envelope = the stress-test bin.
        let mut governor = AdaptiveGovernor::new(AdaptiveConfig::defaults(static_bin));
        if let Some(scope) = ctx.metrics_scope(&format!("adaptive.{}.online", slug(def.name))) {
            governor.attach_telemetry(&scope);
        }
        if let Some(t) = &ctx.tracer {
            governor.set_tracer(t.clone());
        }
        let records = run_closed_loop(
            &mut governor,
            &response,
            &def.env,
            task_seed(ctx.seed, "adaptive.online", idx as u64),
            epochs,
        );
        let envelope_violations = records
            .iter()
            .filter(|r| r.bin_after > static_bin || r.bin_after > r.bin_during + 1)
            .count();
        assert_eq!(
            envelope_violations, 0,
            "{}: online governor violated the safety envelope",
            def.name
        );
        let (up, down, retreats, _holds) = governor.decision_counts();
        let online = PolicyOutcome {
            speedup: records
                .iter()
                .map(|r| {
                    let suite = def.env.phases.suite_at(r.epoch);
                    epoch_speedup(&m, governor.budget(), r.bin_during, suite, r.ce)
                })
                .sum::<f64>()
                / epochs as f64,
            ce: records.iter().map(|r| r.ce).sum(),
            ue: records.iter().map(|r| r.ue).sum(),
            fallbacks: governor.budget().fallbacks(),
            steps: (up, down, retreats),
        };
        offline_ue_total += offline.ue;
        online_ue_total += online.ue;

        for (label, o) in [("offline", &offline), ("online", &online)] {
            let steps = if label == "online" {
                format!("{}/{}/{}", o.steps.0, o.steps.1, o.steps.2)
            } else {
                "-".into()
            };
            say!(
                ctx,
                "{:<15} {:<8} {:>7.3}x {:>10} {:>5} {:>9} {:>15}",
                def.name,
                label,
                o.speedup,
                o.ce,
                o.ue,
                o.fallbacks,
                steps
            );
            rows.push(vec![
                def.name.into(),
                label.into(),
                format!("{:.4}", o.speedup),
                o.ce.to_string(),
                o.ue.to_string(),
                o.fallbacks.to_string(),
                o.steps.0.to_string(),
                o.steps.1.to_string(),
                o.steps.2.to_string(),
            ]);
            let s = slug(def.name);
            ctx.summary(&format!("adaptive.{s}.{label}_speedup"), o.speedup);
            ctx.summary(&format!("adaptive.{s}.{label}_ue"), o.ue as f64);
        }

        // Under the offline stress test's own assumptions the two
        // policies must agree (the differential test pins this at the
        // library layer; this is the end-to-end echo).
        if def.name == "steady" {
            let settled = records.last().expect("epochs > 0").bin_after;
            assert!(
                (settled as i16 - static_bin as i16).abs() <= 1,
                "steady: online settled at bin {settled}, offline picked {static_bin}"
            );
        }
    }

    // The ablation's headline: adaptation trades a sliver of speedup
    // for the disturbance-window UEs the static bin walks into.
    assert!(
        online_ue_total < offline_ue_total,
        "online adaptation must strictly reduce UEs under disturbances \
         (online {online_ue_total} vs offline {offline_ue_total})"
    );
    say!(
        ctx,
        "uncorrectable errors across all scenarios: offline {}, online {} \
         (0 envelope violations)",
        offline_ue_total,
        online_ue_total
    );
    ctx.summary("adaptive.offline_ue_total", offline_ue_total as f64);
    ctx.summary("adaptive.online_ue_total", online_ue_total as f64);
    ctx.csv("adaptive", &rows);
}
