//! Batched single-channel stepping: the indexed [`ChannelController`]
//! versus the frozen naive [`ReferenceController`] on an identical op
//! sequence.
//!
//! Unlike the other bench targets this one *gates*: it asserts the
//! optimized controller sustains at least the reference's ops/s
//! (best-of-3 each, interleaved so thermal drift hits both sides), so
//! `ci.sh` catches a hot-path regression that the differential tests —
//! which only check *behaviour* — would wave through. The two
//! controllers are driven through the same mixed read/write/drain
//! sequence the node simulator issues: bursts of untracked reads,
//! tracked reads resolved out of order, and batched write drains.

use memsim::address::{AddressMapping, DramCoord};
use memsim::config::{ChannelMode, MemoryConfig};
use memsim::controller::ChannelController;
use memsim::reference::ReferenceController;
use std::hint::black_box;
use std::time::Instant;

/// splitmix64, matching the differential suite's generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One pre-generated controller op, so sequence generation stays out
/// of the timed region.
enum Op {
    Read {
        coord: DramCoord,
        arrival: u64,
        tracked: bool,
    },
    Write {
        coord: DramCoord,
    },
    Drain {
        now: u64,
    },
}

fn sequence(seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = Rng(seed);
    let mapping = AddressMapping::new(1, 4, 16);
    let mut now = 0u64;
    let mut out = Vec::with_capacity(ops);
    let mut cursor = 0u64;
    let mut pending_writes = 0usize;
    for _ in 0..ops {
        now += 2_000 + rng.below(30_000);
        // 70% streaming, 30% random — the node's trace mix.
        let addr = if rng.below(100) < 70 {
            cursor = cursor.wrapping_add(64);
            cursor
        } else {
            rng.below(1 << 22) * 64
        };
        let coord = mapping.map(addr);
        if rng.below(100) < 25 {
            out.push(Op::Write { coord });
            pending_writes += 1;
            if pending_writes >= 64 {
                out.push(Op::Drain { now });
                pending_writes = 0;
            }
        } else {
            out.push(Op::Read {
                coord,
                arrival: now,
                tracked: rng.below(100) < 40,
            });
        }
    }
    out
}

/// Drives `ops` through a controller; both controller types expose the
/// same stepping surface, so one macro body serves both.
macro_rules! drive {
    ($ctrl:expr, $ops:expr) => {{
        let ctrl = $ctrl;
        let mut tokens: Vec<u64> = Vec::with_capacity(64);
        for op in $ops {
            match *op {
                Op::Read {
                    coord,
                    arrival,
                    tracked,
                } => {
                    let t = ctrl.submit_read(coord, arrival, tracked);
                    if tracked {
                        tokens.push(t);
                    }
                    if tokens.len() >= 32 {
                        for t in tokens.drain(..) {
                            black_box(ctrl.resolve_read(t));
                        }
                    }
                }
                Op::Write { coord } => ctrl.enqueue_write(coord),
                Op::Drain { now } => {
                    black_box(ctrl.drain_writes(now));
                }
            }
        }
        for t in tokens.drain(..) {
            black_box(ctrl.resolve_read(t));
        }
        black_box(ctrl.stats());
    }};
}

const OPS: usize = 60_000;
const ROUNDS: usize = 3;

fn time_batched(ops: &[Op]) -> f64 {
    let mode = ChannelMode::commercial_baseline();
    let mem = MemoryConfig::default();
    let mut ctrl = ChannelController::new(mode, mem, 200 * 625);
    let start = Instant::now();
    drive!(&mut ctrl, ops);
    start.elapsed().as_secs_f64()
}

fn time_reference(ops: &[Op]) -> f64 {
    let mode = ChannelMode::commercial_baseline();
    let mem = MemoryConfig::default();
    let mut ctrl = ReferenceController::new(mode, mem, 200 * 625);
    let start = Instant::now();
    drive!(&mut ctrl, ops);
    start.elapsed().as_secs_f64()
}

fn main() {
    let ops = sequence(0x57E9, OPS);
    // Interleave rounds (warm-up pair first, unmeasured) so frequency
    // scaling and cache state drift hit both controllers equally.
    let _ = time_batched(&ops);
    let _ = time_reference(&ops);
    let mut best_batched = f64::INFINITY;
    let mut best_reference = f64::INFINITY;
    for _ in 0..ROUNDS {
        best_batched = best_batched.min(time_batched(&ops));
        best_reference = best_reference.min(time_reference(&ops));
    }
    let batched_ops_s = OPS as f64 / best_batched;
    let reference_ops_s = OPS as f64 / best_reference;
    let ratio = batched_ops_s / reference_ops_s;
    println!(
        "stepping/batched: {:.1} ns/iter ({:.2} M ops/s)",
        1e9 * best_batched / OPS as f64,
        batched_ops_s / 1e6
    );
    println!(
        "stepping/reference: {:.1} ns/iter ({:.2} M ops/s)",
        1e9 * best_reference / OPS as f64,
        reference_ops_s / 1e6
    );
    println!("stepping/speedup: {ratio:.2}x");
    assert!(
        ratio >= 1.0,
        "batched controller stepping regressed below the naive reference: \
         {batched_ops_s:.0} ops/s vs {reference_ops_s:.0} ops/s ({ratio:.2}x)"
    );
}
