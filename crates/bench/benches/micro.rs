//! Micro-benchmarks of the hot simulator primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use dram::channel::{Channel, ChannelConfig};
use ecc::bamboo::BlockCodec;
use ecc::rs::ReedSolomon;
use hetero_dmr::governor::EpochGovernor;
use hetero_dmr::protocol::HeteroDmrChannel;
use memsim::address::AddressMapping;
use memsim::cache::Cache;
use memsim::config::{ChannelMode, HierarchyConfig};
use memsim::controller::ChannelController;
use std::hint::black_box;
use workloads::{Suite, TraceGen};

fn rs_codec(c: &mut Criterion) {
    let rs = ReedSolomon::new(8);
    let message = [0x3Cu8; 64];
    let parity = rs.parity_of(&message);
    let mut g = c.benchmark_group("rs_codec");
    g.bench_function("encode_64B", |b| {
        b.iter(|| black_box(rs.parity_of(black_box(&message))))
    });
    g.bench_function("syndromes_64B", |b| {
        b.iter(|| black_box(rs.syndromes(black_box(&message), &parity)))
    });
    g.bench_function("correct_2_errors", |b| {
        b.iter(|| {
            let mut m = message;
            let mut p = parity.clone();
            m[5] ^= 0x11;
            m[40] ^= 0x22;
            black_box(rs.correct(&mut m, &mut p).unwrap())
        })
    });
    g.finish();
}

fn block_codec(c: &mut Criterion) {
    let codec = BlockCodec::new();
    let data = [7u8; 64];
    let block = codec.encode(0x4040, &data);
    c.bench_function("bamboo_detect_clean", |b| {
        b.iter(|| black_box(codec.detect(0x4040, black_box(&block))))
    });
}

fn cache_access(c: &mut Criterion) {
    c.bench_function("cache_access_stream", |b| {
        let mut cache = Cache::new(1024 * 1024, 16);
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            black_box(cache.access(black_box(addr), false))
        })
    });
}

fn controller_read(c: &mut Criterion) {
    c.bench_function("controller_streaming_reads", |b| {
        let h = HierarchyConfig::hierarchy1();
        let mut ctrl = ChannelController::new(
            ChannelMode::commercial_baseline(),
            h.memory,
            h.core.page_timeout_ps(),
        );
        let mapping = AddressMapping::new(1, 4, 16);
        let mut addr = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            t += 4_000;
            let token = ctrl.submit_read(mapping.map(addr), t, true);
            black_box(ctrl.resolve_read(token))
        })
    });
}

fn trace_generation(c: &mut Criterion) {
    c.bench_function("trace_generation_hpcg", |b| {
        b.iter(|| {
            let gen = TraceGen::new(Suite::Hpcg.params(), black_box(11), 1_000);
            black_box(gen.count())
        })
    });
}

fn protocol_fast_read(c: &mut Criterion) {
    c.bench_function("protocol_fast_clean_read", |b| {
        let mut ch = HeteroDmrChannel::new(1 << 16);
        let t = ch.set_used_blocks(1 << 14, 0);
        let mut block = 0u64;
        b.iter(|| {
            block = (block + 1) % (1 << 14);
            black_box(
                ch.read::<rand::rngs::StdRng>(block, t, None)
                    .expect("clean read"),
            )
        })
    });
}

fn frequency_transition(c: &mut Criterion) {
    c.bench_function("channel_frequency_round_trip", |b| {
        let mut t = 0u64;
        let mut channel = Channel::new(ChannelConfig::paper_default());
        b.iter(|| {
            let up = channel.begin_speed_up(t).unwrap();
            let down = channel.begin_slow_down(up).unwrap();
            t = down;
            black_box(channel.state_at(t))
        })
    });
}

fn governor(c: &mut Criterion) {
    c.bench_function("governor_record_error", |b| {
        let mut g = EpochGovernor::default();
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            black_box(g.record_error(t))
        })
    });
}

criterion_group!(
    micro,
    rs_codec,
    block_codec,
    cache_access,
    controller_read,
    trace_generation,
    protocol_fast_read,
    frequency_transition,
    governor
);
criterion_main!(micro);
