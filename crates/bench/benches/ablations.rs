//! Ablations of the design choices DESIGN.md calls out:
//!
//! * write-batch size vs the 1 µs frequency transitions (the Section
//!   III-A1 arithmetic: 2 µs per switch must be amortized over
//!   ~12 800 writes),
//! * margin-aware vs margin-unaware module selection (Figure 11),
//! * detection-only vs detect+correct ECC decode cost,
//! * the naive channel-split DMR strawman vs same-channel Hetero-DMR.

use criterion::{criterion_group, criterion_main, Criterion};
use dram::PS_PER_US;
use ecc::bamboo::BlockCodec;
use hetero_dmr::monte_carlo::MonteCarlo;
use hetero_dmr::{EvalConfig, MemoryDesign, NodeModel, UsageBucket};
use margin::composition::SelectionPolicy;
use memsim::config::HierarchyConfig;
use memsim::NodeSim;
use std::hint::black_box;
use workloads::{Suite, TraceGen};

/// Runs Hetero-DMR-style channel behaviour with an explicit write
/// batch watermark and reports execution time.
fn hdmr_exec_with_batch(watermark: usize) -> u64 {
    let h = HierarchyConfig::hierarchy1();
    let mut mode = MemoryDesign::HeteroDmr { margin_mts: 800 }.channel_mode();
    mode.write_high_watermark = watermark;
    mode.turnaround_penalty_ps = PS_PER_US;
    let mut node = NodeSim::new(h, mode);
    let streams: Vec<_> = (0..h.cores)
        .map(|i| TraceGen::new(Suite::Hpcg.params(), 100 + i as u64, 4_000))
        .collect();
    let warm = node.l3_blocks_per_core();
    for (i, s) in streams.iter().enumerate() {
        node.prewarm_core(
            i,
            s.warmup_blocks(warm, Suite::Hpcg.params().write_fraction),
        );
    }
    node.run(streams).exec_time_ps
}

/// The Section III-A1 ablation: small batches make the 1 µs
/// transitions ruinous; the 12 800-write batches amortize them.
fn ablation_batch_size(c: &mut Criterion) {
    // Report the effect once (visible in bench output), then bench the
    // sweep itself.
    let small = hdmr_exec_with_batch(128);
    let large = hdmr_exec_with_batch(12_800);
    println!(
        "[ablation] Hetero-DMR exec time with 128-write batches vs 12800: {:.3}x worse",
        small as f64 / large as f64
    );
    assert!(
        small >= large,
        "large batches must not lose: small {small} vs large {large}"
    );
    let mut g = c.benchmark_group("ablation_write_batch");
    g.sample_size(10);
    for watermark in [128usize, 1_280, 12_800] {
        g.bench_function(format!("batch_{watermark}"), |b| {
            b.iter(|| black_box(hdmr_exec_with_batch(black_box(watermark))))
        });
    }
    g.finish();
}

/// Margin-aware vs margin-unaware module selection (Figure 11's two
/// curves as a single scalar: fraction of nodes ≥ 0.8 GT/s).
fn ablation_margin_selection(c: &mut Criterion) {
    let mc = MonteCarlo::default();
    let aware = mc.node_fraction_at_least(SelectionPolicy::MarginAware, 800, 20_000, 1);
    let unaware = mc.node_fraction_at_least(SelectionPolicy::MarginUnaware, 800, 20_000, 1);
    println!("[ablation] nodes >=0.8GT/s: aware {aware:.3} vs unaware {unaware:.3}");
    assert!(aware > unaware + 0.3, "selection policy must matter");
    let mut g = c.benchmark_group("ablation_margin_selection");
    for (name, policy) in [
        ("aware", SelectionPolicy::MarginAware),
        ("unaware", SelectionPolicy::MarginUnaware),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(mc.node_fraction_at_least(policy, 800, 2_000, black_box(2))))
        });
    }
    g.finish();
}

/// Detection-only vs detect+correct decode throughput — the
/// Section III-B optimization is also cheaper, not just safer.
fn ablation_ecc_decode(c: &mut Criterion) {
    let codec = BlockCodec::new();
    let data = [0xA7u8; 64];
    let clean = codec.encode(0x1000, &data);
    let mut corrupt = clean;
    corrupt.data[7] ^= 0x40;
    let mut g = c.benchmark_group("ablation_ecc_decode");
    g.bench_function("detect_only_clean", |b| {
        b.iter(|| black_box(codec.detect(0x1000, black_box(&clean))))
    });
    g.bench_function("detect_only_corrupt", |b| {
        b.iter(|| black_box(codec.detect(0x1000, black_box(&corrupt))))
    });
    g.bench_function("detect_and_correct_corrupt", |b| {
        b.iter(|| {
            let mut block = corrupt;
            black_box(codec.correct(0x1000, &mut block).unwrap())
        })
    });
    g.finish();
}

/// The Section III-A strawman: channel-split DMR (half the channels
/// fast, mirrored writes) vs same-channel Hetero-DMR, on Hierarchy2
/// (the strawman needs multiple channels).
fn ablation_naive_dmr(c: &mut Criterion) {
    let mut model = NodeModel::new(
        HierarchyConfig::hierarchy2(),
        EvalConfig {
            ops_per_core: 2_000,
            seed: 0xAB1A,
            windows: 1,
        },
    );
    model.set_shared_cache(false);
    let model = model;
    let naive = model.suite_average(MemoryDesign::NaiveDmr { margin_mts: 800 }, UsageBucket::Low);
    let hdmr = model.suite_average(
        MemoryDesign::HeteroDmr { margin_mts: 800 },
        UsageBucket::Low,
    );
    println!("[ablation] naive channel-split DMR {naive:.3}x vs Hetero-DMR {hdmr:.3}x");
    let mut g = c.benchmark_group("ablation_naive_dmr");
    g.sample_size(10);
    g.bench_function("naive_channel_split", |b| {
        b.iter(|| {
            black_box(model.normalized(
                MemoryDesign::NaiveDmr { margin_mts: 800 },
                Suite::Npb,
                UsageBucket::Low,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_batch_size,
    ablation_margin_selection,
    ablation_ecc_decode,
    ablation_naive_dmr
);
criterion_main!(ablations);
