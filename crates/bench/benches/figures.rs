//! One bench group per paper table/figure: each measures the time to
//! regenerate (a reduced instance of) that experiment, proving every
//! harness stays runnable.

use criterion::{criterion_group, criterion_main, Criterion};
use energy::EnergyModel;
use hdmr_bench::{bench_model, one_cell};
use hetero_dmr::emulation::EmulationInputs;
use hetero_dmr::monte_carlo::MonteCarlo;
use hetero_dmr::MemoryDesign;
use margin::composition::SelectionPolicy;
use margin::errors::TestCondition;
use margin::population::ModulePopulation;
use margin::stress::{run_stress_test, StressConfig};
use memsim::config::HierarchyConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scheduler::{Cluster, GrizzlyTrace, RunSummary, SchedulerConfig, SliceSource, SpeedupModel};
use std::hint::black_box;
use workloads::utilization::{Cluster as Lanl, UtilizationModel};
use workloads::Suite;

fn fig01_utilization(c: &mut Criterion) {
    c.bench_function("fig01_utilization_buckets", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let m = UtilizationModel::for_cluster(Lanl::Grizzly);
            let mut below = 0u32;
            for _ in 0..1_000 {
                if m.sample_utilization(&mut rng) < 0.5 {
                    below += 1;
                }
            }
            black_box((m.bucket_weights(), below))
        })
    });
}

fn table1_to_4_configs(c: &mut Criterion) {
    c.bench_function("table1_4_static_configs", |b| {
        b.iter(|| {
            let t1 = margin::study::TABLE_I;
            let t2: Vec<_> = dram::timing::MemorySetting::ALL
                .iter()
                .map(|s| s.timing())
                .collect();
            let t34 = HierarchyConfig::both();
            black_box((t1, t2, t34))
        })
    });
}

fn fig02_04_population(c: &mut Criterion) {
    c.bench_function("fig02_population_characterization", |b| {
        b.iter(|| {
            let pop = ModulePopulation::paper_study(black_box(7));
            black_box((
                margin::study::by_brand(&pop),
                margin::study::by_chips_per_rank(&pop),
                margin::study::by_condition(&pop),
            ))
        })
    });
}

fn fig05_margin_settings(c: &mut Criterion) {
    let model = bench_model(HierarchyConfig::hierarchy1());
    let mut g = c.benchmark_group("fig05_margin_settings");
    g.sample_size(10);
    g.bench_function("freq_lat_linpack", |b| {
        b.iter(|| {
            black_box(one_cell(
                &model,
                MemoryDesign::ExploitFreqLat,
                Suite::Linpack,
            ))
        })
    });
    g.finish();
}

fn fig06_stress_tests(c: &mut Criterion) {
    c.bench_function("fig06_error_rate_stress", |b| {
        let pop = ModulePopulation::paper_study(3);
        let cfg = StressConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let mut total = 0u64;
            for m in pop.mainstream() {
                total +=
                    run_stress_test(&mut rng, &m.errors, TestCondition::Freq23C, &cfg).corrected;
            }
            black_box(total)
        })
    });
}

fn fig11_monte_carlo(c: &mut Criterion) {
    c.bench_function("fig11_margin_monte_carlo", |b| {
        let mc = MonteCarlo::default();
        b.iter(|| black_box(mc.node_groups(SelectionPolicy::MarginAware, 2_000, black_box(5))))
    });
}

fn fig12_14_designs(c: &mut Criterion) {
    let model = bench_model(HierarchyConfig::hierarchy1());
    let mut g = c.benchmark_group("fig12_designs");
    g.sample_size(10);
    g.bench_function("hetero_dmr_hpcg", |b| {
        b.iter(|| {
            black_box(one_cell(
                &model,
                MemoryDesign::HeteroDmr { margin_mts: 800 },
                Suite::Hpcg,
            ))
        })
    });
    g.bench_function("fmr_hpcg", |b| {
        b.iter(|| black_box(one_cell(&model, MemoryDesign::Fmr, Suite::Hpcg)))
    });
    g.finish();
}

fn fig13_energy(c: &mut Criterion) {
    let model = bench_model(HierarchyConfig::hierarchy1());
    // Populate the run cache once, then measure the energy model.
    let _ = model.run(MemoryDesign::CommercialBaseline, Suite::Npb);
    c.bench_function("fig13_energy_per_instruction", |b| {
        let em = EnergyModel::default();
        b.iter(|| {
            black_box(
                model
                    .energy(MemoryDesign::CommercialBaseline, Suite::Npb, &em)
                    .epi_nj(),
            )
        })
    });
}

fn fig15_16_baseline_profile(c: &mut Criterion) {
    let model = bench_model(HierarchyConfig::hierarchy1());
    let base = model.run(MemoryDesign::CommercialBaseline, Suite::Lulesh);
    let fast = model.run(MemoryDesign::ExploitFreqLat, Suite::Lulesh);
    c.bench_function("fig16_emulation_formula", |b| {
        b.iter(|| {
            let inputs = EmulationInputs::from_fast_run(&fast, dram::rate::DataRate::MT3200);
            black_box((
                base.bandwidth_utilization(),
                base.write_fraction(),
                inputs.emulated_speedup(base.exec_time_ps),
            ))
        })
    });
}

fn fig17_cluster(c: &mut Criterion) {
    let trace = GrizzlyTrace::scaled(2_000, 256).generate(9);
    let mut g = c.benchmark_group("fig17_cluster_sim");
    g.sample_size(10);
    g.bench_function("margin_aware_schedule", |b| {
        let cluster = Cluster::new(256, [0.62, 0.36, 0.02]);
        let config = SchedulerConfig::builder()
            .margin_aware()
            .speedups(SpeedupModel::hetero_dmr_default())
            .build()
            .unwrap();
        b.iter(|| {
            let out = cluster
                .schedule(SliceSource::new(&trace))
                .config(config)
                .run();
            black_box(RunSummary::from_outcomes(&out))
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    fig01_utilization,
    table1_to_4_configs,
    fig02_04_population,
    fig05_margin_settings,
    fig06_stress_tests,
    fig11_monte_carlo,
    fig12_14_designs,
    fig13_energy,
    fig15_16_baseline_profile,
    fig17_cluster
);
criterion_main!(figures);
