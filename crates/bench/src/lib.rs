//! Shared helpers for the benchmark harnesses.
//!
//! Each Criterion bench in `benches/` regenerates (a reduced instance
//! of) one of the paper's tables or figures, so `cargo bench`
//! exercises every experiment path end to end; `ablations` sweeps the
//! design choices DESIGN.md calls out; `micro` measures the hot
//! simulator primitives.

use hetero_dmr::{EvalConfig, MemoryDesign, NodeModel, UsageBucket};
use memsim::config::HierarchyConfig;
use workloads::Suite;

/// A reduced node model sized for benchmarking (small but large
/// enough to exercise write drains and steady-state behaviour).
pub fn bench_model(h: HierarchyConfig) -> NodeModel {
    let mut m = NodeModel::new(
        h,
        EvalConfig {
            ops_per_core: 4_000,
            seed: 0xBE7C,
            windows: 1,
        },
    );
    // Benchmarks measure real simulation cost; results shared across
    // benches through the process-wide cache would corrupt timings.
    m.set_shared_cache(false);
    m
}

/// One normalized-performance evaluation (the unit of Figures 5/12).
pub fn one_cell(model: &NodeModel, design: MemoryDesign, suite: Suite) -> f64 {
    model.normalized(design, suite, UsageBucket::Low)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_helpers_run() {
        let m = bench_model(HierarchyConfig::hierarchy1());
        let v = one_cell(&m, MemoryDesign::ExploitFreqLat, Suite::Linpack);
        assert!(v > 0.8 && v < 2.0);
    }
}
