//! Property tests for the characterization substrate.

use dram::rate::DataRate;
use margin::composition::{channel_margin, node_margin, SelectionPolicy};
use margin::population::{quantize, ModulePopulation};
use margin::stress::{measure_margin, sample_poisson, StressConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The stress measurement never over-reports: the measured margin
    /// is at most the true margin, within one 200 MT/s step of it
    /// (unless the system cap binds), and step-aligned.
    #[test]
    fn measurement_is_conservative_and_tight(true_margin in 0u32..2_000, spec in prop_oneof![Just(DataRate::MT2400), Just(DataRate::MT3200)]) {
        let cfg = StressConfig::default();
        let measured = measure_margin(spec, true_margin, &cfg);
        prop_assert!(measured <= true_margin);
        prop_assert_eq!(measured % cfg.step_mts, 0);
        let cap = cfg.rate_cap_mts.saturating_sub(spec.mts());
        if measured < cap {
            prop_assert!(true_margin - measured < cfg.step_mts,
                "measured {measured} is more than one step below true {true_margin}");
        } else {
            prop_assert_eq!(measured, cap);
        }
    }

    /// Quantization is idempotent and monotone.
    #[test]
    fn quantize_properties(a in 0u32..10_000, b in 0u32..10_000) {
        prop_assert_eq!(quantize(quantize(a)), quantize(a));
        if a <= b {
            prop_assert!(quantize(a) <= quantize(b));
        }
        prop_assert!(quantize(a) <= a);
    }

    /// Margin composition: aware ≥ unaware ≥ 0, node ≤ every channel.
    #[test]
    fn composition_orderings(margins in proptest::collection::vec(0u32..1_600, 1..24)) {
        let aware = channel_margin(&margins, SelectionPolicy::MarginAware);
        let unaware = channel_margin(&margins, SelectionPolicy::MarginUnaware);
        prop_assert!(aware >= unaware);
        prop_assert_eq!(aware, *margins.iter().max().unwrap());
        let node = node_margin(&margins);
        for &m in &margins {
            prop_assert!(node <= m);
        }
    }

    /// The Poisson sampler is nonnegative and zero iff λ ≤ 0 …
    /// statistically (mean within 3σ for moderate λ).
    #[test]
    fn poisson_sampler_sane(lambda in 0.0f64..200.0, seed in 0u64..1_000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 200;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, lambda)).sum();
        let mean = total as f64 / n as f64;
        if lambda == 0.0 {
            prop_assert_eq!(total, 0);
        } else {
            let sigma = (lambda / n as f64).sqrt();
            prop_assert!((mean - lambda).abs() < 6.0 * sigma.max(0.3),
                "lambda {lambda}: sample mean {mean}");
        }
    }
}

/// The population regenerates identically per seed and its observable
/// aggregates stay inside the bands the paper reports, across many
/// seeds (not just the default one).
#[test]
fn population_aggregates_stable_across_seeds() {
    for seed in [1u64, 7, 42, 1337, 0xD1A2] {
        let pop = ModulePopulation::paper_study(seed);
        let margins: Vec<f64> = pop
            .mainstream()
            .map(|m| m.measured_margin_mts as f64)
            .collect();
        let mean = margin::stats::mean(&margins);
        assert!(
            (600.0..900.0).contains(&mean),
            "seed {seed}: A-C mean margin {mean}"
        );
        let norm: Vec<f64> = pop.mainstream().map(|m| m.normalized_margin()).collect();
        let mean_norm = margin::stats::mean(&norm);
        assert!(
            (0.20..0.34).contains(&mean_norm),
            "seed {seed}: normalized margin {mean_norm}"
        );
    }
}
