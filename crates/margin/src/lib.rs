//! Server-memory frequency-margin characterization substrate.
//!
//! The paper's Section II characterizes 119 physical DDR4 RDIMMs
//! (3006 chips) on an Intel W-3175X testbed. We cannot ship the DIMMs,
//! so this crate ships the *statistical shape* of that study instead:
//! a module-population model whose conditional distributions are fit to
//! the paper's reported aggregates (Figures 2–4 and 6, Table I), plus a
//! simulated stress-test harness that "measures" margins the same way
//! the paper did — stepping the data rate in 200 MT/s increments and
//! accepting the highest rate at which 99.999 %+ of accesses are
//! error-free.
//!
//! Modules:
//!
//! * [`brand`] — the four manufacturer brands and their margin
//!   profiles,
//! * [`population`] — the synthetic 119-module study population,
//! * [`stress`] — the simulated stress-test / margin-measurement
//!   procedure,
//! * [`errors`] — CE/UE error-rate model vs. setting and temperature
//!   (Figure 6),
//! * [`temperature`] — ambient → on-DIMM temperature model,
//! * [`stats`] — mean / standard deviation / confidence-interval and
//!   histogram helpers used by the figure harnesses,
//! * [`study`] — Table I constants and the end-to-end study driver,
//! * [`composition`] — channel- and node-level margin composition
//!   (margin-aware vs. margin-unaware module selection).
//!
//! # Example
//!
//! ```
//! use margin::population::ModulePopulation;
//! use margin::brand::Brand;
//!
//! let pop = ModulePopulation::paper_study(42);
//! assert_eq!(pop.modules().len(), 119);
//!
//! // Brands A-C average ~770 MT/s of frequency margin (~27 %).
//! let abc: Vec<_> = pop
//!     .modules()
//!     .iter()
//!     .filter(|m| m.spec.brand != Brand::D)
//!     .collect();
//! let avg: f64 = abc.iter().map(|m| m.measured_margin_mts as f64).sum::<f64>()
//!     / abc.len() as f64;
//! assert!(avg > 650.0 && avg < 900.0);
//! ```

pub mod brand;
pub mod composition;
pub mod errors;
pub mod population;
pub mod stats;
pub mod stress;
pub mod study;
pub mod temperature;
pub mod trinitite;
pub mod voltage;

pub use brand::Brand;
pub use population::{MeasuredModule, ModuleCondition, ModulePopulation, ModuleSpec};
pub use stress::{measure_margin, measure_margin_metered, StressConfig, StressMeter};
pub use temperature::{AmbientTemperature, TemperatureTransient};
