//! Study-scale constants (Table I) and the Figure 3/4 grouping driver.

use crate::population::{MeasuredModule, ModuleCondition, ModulePopulation};
use crate::stats::{ci99_half_width, mean, std_dev};
use crate::Brand;
use dram::organization::ChipDensity;
use dram::rate::DataRate;

/// One row of Table I: the scale of a characterization study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyScale {
    /// Study name.
    pub name: &'static str,
    /// DRAM type studied.
    pub dram_type: &'static str,
    /// Number of modules (None when the prior work reports only chips).
    pub modules: Option<u32>,
    /// Number of chips.
    pub chips: u32,
    /// Which margin the study characterizes.
    pub margin: &'static str,
}

/// Table I of the paper: this study versus prior characterizations.
pub const TABLE_I: [StudyScale; 7] = [
    StudyScale {
        name: "This Paper",
        dram_type: "DDR4 RDIMM",
        modules: Some(119),
        chips: 3006,
        margin: "frequency",
    },
    StudyScale {
        name: "Prior Work [60]",
        dram_type: "DDR3 SO-DIMM",
        modules: Some(96),
        chips: 768,
        margin: "latency",
    },
    StudyScale {
        name: "Prior Work [56]",
        dram_type: "DDR3 SO-DIMM",
        modules: Some(32),
        chips: 416,
        margin: "latency",
    },
    StudyScale {
        name: "Prior Work [47]",
        dram_type: "DDR3 SO-DIMM",
        modules: Some(30),
        chips: 240,
        margin: "latency",
    },
    StudyScale {
        name: "Prior Work [65]",
        dram_type: "LPDDR4",
        modules: None,
        chips: 368,
        margin: "latency",
    },
    StudyScale {
        name: "Prior Work [62]",
        dram_type: "DDR3 SO-DIMM",
        modules: Some(34),
        chips: 248,
        margin: "latency",
    },
    StudyScale {
        name: "Prior Work [50]",
        dram_type: "DDR3 UDIMM",
        modules: Some(8),
        chips: 64,
        margin: "voltage",
    },
];

/// Summary of one module group: Figures 3 and 4 bars.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Group label (e.g. "Brand A", "9 chips/rank").
    pub label: String,
    /// Number of modules in the group.
    pub count: usize,
    /// Mean measured margin, MT/s.
    pub mean_mts: f64,
    /// Sample standard deviation, MT/s.
    pub std_dev_mts: f64,
    /// 99 % normal CI half-width of the mean, MT/s.
    pub ci99_mts: f64,
}

fn summarize<'a, I>(label: impl Into<String>, modules: I) -> GroupSummary
where
    I: Iterator<Item = &'a MeasuredModule>,
{
    let margins: Vec<f64> = modules.map(|m| m.measured_margin_mts as f64).collect();
    GroupSummary {
        label: label.into(),
        count: margins.len(),
        mean_mts: mean(&margins),
        std_dev_mts: std_dev(&margins),
        ci99_mts: ci99_half_width(&margins),
    }
}

/// Figure 3a: margin by brand (mean + 99 % CI).
pub fn by_brand(pop: &ModulePopulation) -> Vec<GroupSummary> {
    Brand::ALL
        .iter()
        .map(|&b| {
            summarize(
                b.to_string(),
                pop.modules().iter().filter(move |m| m.spec.brand == b),
            )
        })
        .collect()
}

/// Figure 3b: margin by chips per rank (brands A–C only).
pub fn by_chips_per_rank(pop: &ModulePopulation) -> Vec<GroupSummary> {
    [9u8, 18]
        .iter()
        .map(|&cpr| {
            summarize(
                format!("{cpr} chips/rank"),
                pop.mainstream()
                    .filter(move |m| m.spec.organization.chips_per_rank == cpr),
            )
        })
        .collect()
}

/// Figure 4a: margin by module condition (aging study).
pub fn by_condition(pop: &ModulePopulation) -> Vec<GroupSummary> {
    [
        (ModuleCondition::New, "Brand new"),
        (ModuleCondition::InProduction, "3-year in-production"),
        (ModuleCondition::Refurbished, "Refurbished"),
    ]
    .iter()
    .map(|&(cond, label)| {
        summarize(
            label,
            pop.mainstream().filter(move |m| m.spec.condition == cond),
        )
    })
    .collect()
}

/// Figure 4b: margin by ranks per module.
pub fn by_ranks(pop: &ModulePopulation) -> Vec<GroupSummary> {
    [1u8, 2]
        .iter()
        .map(|&r| {
            summarize(
                format!("{r} rank(s)"),
                pop.mainstream()
                    .filter(move |m| m.spec.organization.ranks == r),
            )
        })
        .collect()
}

/// Figure 4c: margin by chip density.
pub fn by_density(pop: &ModulePopulation) -> Vec<GroupSummary> {
    [ChipDensity::Gb4, ChipDensity::Gb8, ChipDensity::Gb16]
        .iter()
        .map(|&d| {
            summarize(
                d.to_string(),
                pop.mainstream()
                    .filter(move |m| m.spec.organization.density == d),
            )
        })
        .collect()
}

/// Figure 4d: margin by manufacturing year.
pub fn by_year(pop: &ModulePopulation) -> Vec<GroupSummary> {
    (2017u16..=2020)
        .map(|y| {
            summarize(
                format!("{y}"),
                pop.mainstream()
                    .filter(move |m| m.spec.manufactured_year == y),
            )
        })
        .collect()
}

/// One panel of a Figure 3/4-style breakdown: a label plus the
/// grouping function that produces its bars.
pub type Panel = (&'static str, fn(&ModulePopulation) -> Vec<GroupSummary>);

/// Computes several breakdown panels over the same population in
/// parallel on the worker pool, returning `(label, bars)` in input
/// order. Each grouping is a pure function of the population, so the
/// result is identical at any worker budget.
pub fn panels(pop: &ModulePopulation, specs: &[Panel]) -> Vec<(&'static str, Vec<GroupSummary>)> {
    runner::parallel_map(specs.to_vec(), |_, (label, grouping)| {
        (label, grouping(pop))
    })
}

/// Impact of manufacturer-specified data rate (Section II-A's
/// cap-confounded comparison).
pub fn by_specified_rate(pop: &ModulePopulation) -> Vec<GroupSummary> {
    [DataRate::MT2400, DataRate::MT3200]
        .iter()
        .map(|&r| {
            summarize(
                r.to_string(),
                pop.mainstream()
                    .filter(move |m| m.spec.organization.specified_rate == r),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> ModulePopulation {
        ModulePopulation::paper_study(0xD1A2)
    }

    #[test]
    fn table1_totals() {
        assert_eq!(TABLE_I[0].modules, Some(119));
        assert_eq!(TABLE_I[0].chips, 3006);
        // The paper claims more chips than all prior works combined.
        let prior_total: u32 = TABLE_I[1..].iter().map(|s| s.chips).sum();
        assert!(TABLE_I[0].chips > prior_total);
    }

    #[test]
    fn brand_summary_shape() {
        let s = by_brand(&pop());
        assert_eq!(s.len(), 4);
        // A-C similar to each other; D far lower (2.6x in the paper).
        let abc_mean = (s[0].mean_mts + s[1].mean_mts + s[2].mean_mts) / 3.0;
        for g in &s[..3] {
            assert!((g.mean_mts - abc_mean).abs() < 150.0, "{}", g.label);
        }
        let ratio = abc_mean / s[3].mean_mts;
        assert!(ratio > 1.8 && ratio < 4.5, "A-C/D ratio {ratio}");
    }

    #[test]
    fn chips_per_rank_summary_shape() {
        let s = by_chips_per_rank(&pop());
        assert_eq!(s[0].count + s[1].count, 103);
        // 9 chips/rank is consistent: lower STDev than 18 chips/rank.
        assert!(s[0].std_dev_mts < s[1].std_dev_mts);
    }

    #[test]
    fn aging_has_little_impact() {
        let s = by_condition(&pop());
        let means: Vec<f64> = s
            .iter()
            .filter(|g| g.count > 0)
            .map(|g| g.mean_mts)
            .collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 250.0, "aging spread {spread}");
    }

    #[test]
    fn panel_driver_matches_direct_calls() {
        let p = pop();
        let computed = panels(&p, &[("brand", by_brand), ("ranks", by_ranks)]);
        assert_eq!(computed[0].0, "brand");
        assert_eq!(computed[0].1, by_brand(&p));
        assert_eq!(computed[1].1, by_ranks(&p));
    }

    #[test]
    fn groups_partition_the_mainstream_population() {
        let p = pop();
        for groups in [by_ranks(&p), by_specified_rate(&p)] {
            let total: usize = groups.iter().map(|g| g.count).sum();
            assert_eq!(total, 103);
        }
        let total: usize = by_year(&p).iter().map(|g| g.count).sum();
        assert_eq!(total, 103);
    }
}
