//! Small statistics toolkit used across the characterization study.
//!
//! Provides exactly what the paper's figures need: mean, sample
//! standard deviation, the 99 % normal-approximation confidence
//! interval of Figure 3a (the paper computes CIs "using the normal
//! distribution similar to prior work"), histogram bucketing for
//! Figure 2, and a Box-Muller normal sampler for the Monte Carlo
//! studies (the paper models margins as normally distributed,
//! following VARIUS).

use rand::Rng;

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (n − 1 denominator); 0.0 for fewer than
/// two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// z-value for a two-sided 99 % normal confidence interval.
pub const Z_99: f64 = 2.576;

/// Half-width of the 99 % confidence interval of the mean under the
/// normal approximation (as in Figure 3a of the paper).
pub fn ci99_half_width(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    Z_99 * std_dev(values) / (values.len() as f64).sqrt()
}

/// Draws one sample from N(`mean`, `std`²) via Box-Muller.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Draws from a lognormal distribution with the given parameters of
/// the underlying normal (used for per-module error rates, which span
/// orders of magnitude in Figure 6).
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    sample_normal(rng, mu, sigma).exp()
}

/// A histogram over fixed-width buckets, for Figure 2-style plots.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: f64,
    origin: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with buckets `[origin + i·width, origin + (i+1)·width)`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive.
    pub fn new(origin: f64, bucket_width: f64) -> Histogram {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        Histogram {
            bucket_width,
            origin,
            counts: Vec::new(),
        }
    }

    /// Adds one observation. Values below the origin are clamped into
    /// the first bucket.
    pub fn add(&mut self, value: f64) {
        let idx = (((value - self.origin) / self.bucket_width).floor()).max(0.0) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// (bucket lower bound, count) pairs in ascending order.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.origin + i as f64 * self.bucket_width, c))
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The lower bound of the bucket with the most observations
    /// (the paper highlights 800 MT/s as "the most common frequency
    /// margin among the 119 modules").
    pub fn mode_bucket(&self) -> Option<f64> {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| self.origin + i as f64 * self.bucket_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_std() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&vals) - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((std_dev(&vals) - 2.138).abs() < 0.01);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(ci99_half_width(&[3.0]), 0.0);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(ci99_half_width(&large) < ci99_half_width(&small));
    }

    #[test]
    fn normal_sampler_matches_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_normal(&mut rng, 770.0, 124.0))
            .collect();
        assert!((mean(&samples) - 770.0).abs() < 5.0);
        assert!((std_dev(&samples) - 124.0).abs() < 5.0);
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(8);
        let samples: Vec<f64> = (0..5_000)
            .map(|_| sample_lognormal(&mut rng, 3.0, 1.5))
            .collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        let m = mean(&samples);
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!(m > median, "lognormal mean exceeds median");
    }

    #[test]
    fn histogram_buckets_and_mode() {
        let mut h = Histogram::new(0.0, 200.0);
        for v in [650.0, 800.0, 810.0, 999.0, 801.0, 400.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        // Bucket [800, 1000) holds four values: 800, 810, 999, 801.
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets[4], (800.0, 4));
        assert_eq!(h.mode_bucket(), Some(800.0));
    }

    #[test]
    fn histogram_clamps_below_origin() {
        let mut h = Histogram::new(0.0, 100.0);
        h.add(-5.0);
        assert_eq!(h.buckets().next(), Some((0.0, 1)));
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        let _ = Histogram::new(0.0, 0.0);
    }
}
