//! The synthetic 119-module study population.
//!
//! Composition mirrors the paper's study: 103 modules from the three
//! major brands A–C (44 × 3200 MT/s with 9 chips/rank, 27 × 3200 MT/s
//! with 18 chips/rank, 32 × 2400 MT/s) plus 16 modules from the small
//! vendor D; 3006 chips in total. A subset is borrowed from a
//! three-year-old in-production cluster or refurbished (Figure 4a
//! finds aging does not matter). The testbed caps observable data
//! rates at 4000 MT/s (Section II-A), which truncates the measurable
//! margin of 3200 MT/s modules at 800 MT/s — reproduced here so the
//! population's observable statistics match the paper's.

use crate::brand::Brand;
use crate::errors::ErrorProfile;
use crate::stats::sample_normal;
use dram::organization::{ChipDensity, ModuleOrganization};
use dram::rate::DataRate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The system-level data-rate cap of the paper's testbed.
pub const SYSTEM_RATE_CAP_MTS: u32 = 4000;

/// Provenance of a module in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleCondition {
    /// Purchased new for the study.
    New,
    /// Extracted from a three-year-old in-production cluster
    /// (modules A8–A31 in the paper; not thermal-chamber tested).
    InProduction,
    /// Refurbished stock.
    Refurbished,
}

/// Static description of one module in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleSpec {
    /// Index within its brand (e.g. the `40` of "A40").
    pub index: u32,
    /// Manufacturer.
    pub brand: Brand,
    /// Physical organization (chips/rank, ranks, density, labelled rate).
    pub organization: ModuleOrganization,
    /// Provenance.
    pub condition: ModuleCondition,
    /// Manufacturing year (2017–2020 in the study).
    pub manufactured_year: u16,
}

impl ModuleSpec {
    /// The module's study label, e.g. "A40".
    pub fn label(&self) -> String {
        let letter = match self.brand {
            Brand::A => 'A',
            Brand::B => 'B',
            Brand::C => 'C',
            Brand::D => 'D',
        };
        format!("{letter}{}", self.index)
    }
}

/// One module with its (simulated) ground truth and measurement.
#[derive(Debug, Clone)]
pub struct MeasuredModule {
    /// Static description.
    pub spec: ModuleSpec,
    /// The module's true frequency margin in MT/s at 23 °C ambient —
    /// the quantity a perfect, uncapped testbed would observe.
    pub true_margin_mts: u32,
    /// The margin the 200 MT/s-step, 4000 MT/s-capped testbed
    /// measures at 23 °C (what Figure 2 plots).
    pub measured_margin_mts: u32,
    /// Measured margin at 45 °C ambient (5 of 103 A–C modules lose a
    /// step, Section II-C).
    pub margin_at_45c_mts: u32,
    /// Measured margin at 45 °C when *also* exploiting latency margins
    /// (9 of 103 lose a step).
    pub freq_lat_margin_at_45c_mts: u32,
    /// Whether the module boots at all in the 45 °C chamber (a handful
    /// do not: A3, A40, A55, B12, B19, C3, C6, C10, C12).
    pub boots_at_45c: bool,
    /// Whether the module went into the thermal chamber (in-production
    /// loaners did not).
    pub chamber_tested: bool,
    /// Error rates at the highest bootable rate under the four tested
    /// conditions (Figure 6).
    pub errors: ErrorProfile,
}

impl MeasuredModule {
    /// Margin normalized to the labelled data rate (the paper's
    /// headline "27 % faster" metric).
    pub fn normalized_margin(&self) -> f64 {
        self.measured_margin_mts as f64 / self.spec.organization.specified_rate.mts() as f64
    }

    /// The highest *measured-safe* data rate.
    pub fn safe_rate(&self) -> DataRate {
        self.spec
            .organization
            .specified_rate
            .plus_margin(self.measured_margin_mts)
    }
}

/// The full study population.
#[derive(Debug, Clone)]
pub struct ModulePopulation {
    modules: Vec<MeasuredModule>,
}

impl ModulePopulation {
    /// Generates the 119-module population used throughout the
    /// reproduction, deterministically from `seed`.
    pub fn paper_study(seed: u64) -> ModulePopulation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut modules = Vec::with_capacity(119);
        let mut per_brand_index = [0u32; 4];

        // Brands A-C: 44 × (3200, 9cpr), 27 × (3200, 18cpr),
        // 20 × (2400, 9cpr), 12 × (2400, 18cpr).
        let mut configs: Vec<(DataRate, u8)> = Vec::new();
        configs.extend(std::iter::repeat_n((DataRate::MT3200, 9), 44));
        configs.extend(std::iter::repeat_n((DataRate::MT3200, 18), 27));
        configs.extend(std::iter::repeat_n((DataRate::MT2400, 9), 20));
        configs.extend(std::iter::repeat_n((DataRate::MT2400, 18), 12));
        for (i, (rate, cpr)) in configs.into_iter().enumerate() {
            let brand = Brand::MAINSTREAM[i % 3];
            let bi = brand_slot(brand);
            per_brand_index[bi] += 1;
            let index = per_brand_index[bi];
            // Paper: A8-A31 came from a 3-year-old production cluster.
            let condition = if brand == Brand::A && (8..=31).contains(&index) {
                ModuleCondition::InProduction
            } else if i % 11 == 10 {
                ModuleCondition::Refurbished
            } else {
                ModuleCondition::New
            };
            let spec = ModuleSpec {
                index,
                brand,
                organization: organization(rate, cpr, &mut rng),
                condition,
                manufactured_year: 2017 + rng.random_range(0..4),
            };
            modules.push(measure(spec, &mut rng));
        }

        // Brand D: 16 × (3200, 18cpr) budget modules.
        for _ in 0..16 {
            per_brand_index[3] += 1;
            let spec = ModuleSpec {
                index: per_brand_index[3],
                brand: Brand::D,
                organization: organization(DataRate::MT3200, 18, &mut rng),
                condition: ModuleCondition::New,
                manufactured_year: 2018 + rng.random_range(0..3),
            };
            modules.push(measure(spec, &mut rng));
        }

        ModulePopulation { modules }
    }

    /// All measured modules.
    pub fn modules(&self) -> &[MeasuredModule] {
        &self.modules
    }

    /// Total DRAM chips across the population (Table I's 3006).
    pub fn total_chips(&self) -> u32 {
        self.modules
            .iter()
            .map(|m| m.spec.organization.total_chips())
            .sum()
    }

    /// Modules of the three mainstream brands only.
    pub fn mainstream(&self) -> impl Iterator<Item = &MeasuredModule> {
        self.modules.iter().filter(|m| m.spec.brand != Brand::D)
    }
}

fn brand_slot(brand: Brand) -> usize {
    match brand {
        Brand::A => 0,
        Brand::B => 1,
        Brand::C => 2,
        Brand::D => 3,
    }
}

fn organization(rate: DataRate, chips_per_rank: u8, rng: &mut StdRng) -> ModuleOrganization {
    let density = match rng.random_range(0..10) {
        0..=1 => ChipDensity::Gb4,
        2..=8 => ChipDensity::Gb8,
        _ => ChipDensity::Gb16,
    };
    ModuleOrganization {
        chips_per_rank,
        ranks: if rng.random_range(0..5) == 0 { 1 } else { 2 },
        density,
        specified_rate: rate,
    }
}

/// Simulates the study's measurement of one module.
fn measure(spec: ModuleSpec, rng: &mut StdRng) -> MeasuredModule {
    let (mean, std) = if spec.organization.chips_per_rank == 9 {
        (
            spec.brand.margin_mean_9cpr_mts(),
            spec.brand.margin_std_9cpr_mts(),
        )
    } else {
        (
            spec.brand.margin_mean_18cpr_mts(),
            spec.brand.margin_std_18cpr_mts(),
        )
    };
    // Down-binned parts share silicon with the higher bins, so a
    // 2400 MT/s label converts part of the 800 MT/s label gap into
    // extra true headroom — the source of the paper's cap-confounded
    // observation that 2400 MT/s modules average ~967 MT/s of margin
    // against ~679 MT/s for 3200 MT/s ones.
    let label_gap = DataRate::MT3200
        .mts()
        .saturating_sub(spec.organization.specified_rate.mts());
    let down_bin_bonus = 0.25 * label_gap as f64;
    let mut true_margin = sample_normal(rng, mean + down_bin_bonus, std);
    // Paper: among brands A-C, 9 chips/rank modules never measured
    // below 600 MT/s.
    if spec.brand != Brand::D && spec.organization.chips_per_rank == 9 {
        true_margin = true_margin.max(620.0);
    }
    let true_margin = true_margin.max(0.0) as u32;

    let cap = SYSTEM_RATE_CAP_MTS.saturating_sub(spec.organization.specified_rate.mts());
    let measured = quantize(true_margin).min(cap);

    // 45 °C: ~5 % of modules lose one 200 MT/s step of frequency
    // margin; ~9 % lose a step when also exploiting latency margins.
    let hot_loses_step = rng.random_bool(5.0 / 103.0);
    let hot_lat_loses_step = hot_loses_step || rng.random_bool(4.0 / 98.0);
    let margin_at_45c = if hot_loses_step {
        measured.saturating_sub(200)
    } else {
        measured
    };
    let freq_lat_margin_at_45c = if hot_lat_loses_step {
        measured.saturating_sub(200)
    } else {
        measured
    };

    // A handful of modules fail to boot in the chamber (9 of 103 named
    // in Figure 6's caption).
    let boots_at_45c = !rng.random_bool(9.0 / 103.0);
    let chamber_tested = spec.condition != ModuleCondition::InProduction;

    MeasuredModule {
        errors: ErrorProfile::sample(rng, &spec),
        spec,
        true_margin_mts: true_margin,
        measured_margin_mts: measured,
        margin_at_45c_mts: margin_at_45c,
        freq_lat_margin_at_45c_mts: freq_lat_margin_at_45c,
        boots_at_45c,
        chamber_tested,
    }
}

/// Quantizes a margin down to the 200 MT/s characterization step.
pub fn quantize(margin_mts: u32) -> u32 {
    margin_mts / 200 * 200
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    fn pop() -> ModulePopulation {
        ModulePopulation::paper_study(0xD1A2)
    }

    #[test]
    fn population_size_and_chips() {
        let p = pop();
        assert_eq!(p.modules().len(), 119);
        // Table I: 3006 chips. Our synthetic mix of 1- and 2-rank
        // modules lands in the same regime.
        let chips = p.total_chips();
        assert!(chips > 2300 && chips < 3800, "chips {chips}");
    }

    #[test]
    fn mainstream_average_margin_near_770() {
        let p = pop();
        let margins: Vec<f64> = p
            .mainstream()
            .map(|m| m.measured_margin_mts as f64)
            .collect();
        assert_eq!(margins.len(), 103);
        let avg = mean(&margins);
        assert!((avg - 770.0).abs() < 80.0, "avg {avg}");
    }

    #[test]
    fn brand_d_average_near_213() {
        let p = pop();
        let margins: Vec<f64> = p
            .modules()
            .iter()
            .filter(|m| m.spec.brand == Brand::D)
            .map(|m| m.measured_margin_mts as f64)
            .collect();
        assert_eq!(margins.len(), 16);
        let avg = mean(&margins);
        assert!((avg - 213.0).abs() < 120.0, "avg {avg}");
    }

    #[test]
    fn normalized_margin_near_27_percent() {
        let p = pop();
        let normalized: Vec<f64> = p.mainstream().map(|m| m.normalized_margin()).collect();
        let avg = mean(&normalized);
        assert!((avg - 0.27).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn nine_chip_modules_consistent_and_min_600() {
        let p = pop();
        let nine: Vec<f64> = p
            .mainstream()
            .filter(|m| m.spec.organization.chips_per_rank == 9)
            .map(|m| m.measured_margin_mts as f64)
            .collect();
        let eighteen: Vec<f64> = p
            .mainstream()
            .filter(|m| m.spec.organization.chips_per_rank == 18)
            .map(|m| m.measured_margin_mts as f64)
            .collect();
        assert!(nine.iter().all(|&m| m >= 600.0));
        // 18 chips/rank spread is roughly 2x the 9 chips/rank spread.
        assert!(std_dev(&eighteen) > 1.4 * std_dev(&nine));
    }

    #[test]
    fn system_cap_truncates_3200_modules() {
        let p = pop();
        for m in p.modules() {
            let cap = SYSTEM_RATE_CAP_MTS - m.spec.organization.specified_rate.mts();
            assert!(m.measured_margin_mts <= cap, "{}", m.spec.label());
            assert_eq!(m.measured_margin_mts % 200, 0);
        }
        // Most 3200/9cpr mainstream modules hit the 800 cap (36/44 in
        // the paper).
        let capped = p
            .mainstream()
            .filter(|m| {
                m.spec.organization.specified_rate == DataRate::MT3200
                    && m.spec.organization.chips_per_rank == 9
            })
            .filter(|m| m.measured_margin_mts == 800)
            .count();
        assert!(capped >= 28, "only {capped} of 44 capped");
    }

    #[test]
    fn rate_2400_margins_exceed_3200_margins() {
        // The paper's (cap-confounded) observation: 2400 MT/s modules
        // show ~967 MT/s margin vs ~679 for 3200 MT/s ones.
        let p = pop();
        let avg_of = |rate: DataRate| {
            let v: Vec<f64> = p
                .mainstream()
                .filter(|m| m.spec.organization.specified_rate == rate)
                .map(|m| m.measured_margin_mts as f64)
                .collect();
            mean(&v)
        };
        assert!(avg_of(DataRate::MT2400) > avg_of(DataRate::MT3200) + 100.0);
    }

    #[test]
    fn hot_margins_never_exceed_cold() {
        let p = pop();
        for m in p.modules() {
            assert!(m.margin_at_45c_mts <= m.measured_margin_mts);
            assert!(m.freq_lat_margin_at_45c_mts <= m.measured_margin_mts);
        }
    }

    #[test]
    fn in_production_modules_skip_chamber() {
        let p = pop();
        let loaners: Vec<_> = p
            .modules()
            .iter()
            .filter(|m| m.spec.condition == ModuleCondition::InProduction)
            .collect();
        assert_eq!(loaners.len(), 24); // A8-A31
        assert!(loaners.iter().all(|m| !m.chamber_tested));
        assert!(loaners.iter().all(|m| m.spec.brand == Brand::A));
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = ModulePopulation::paper_study(7);
        let b = ModulePopulation::paper_study(7);
        for (x, y) in a.modules().iter().zip(b.modules()) {
            assert_eq!(x.measured_margin_mts, y.measured_margin_mts);
            assert_eq!(x.spec.label(), y.spec.label());
        }
        let c = ModulePopulation::paper_study(8);
        assert!(a
            .modules()
            .iter()
            .zip(c.modules())
            .any(|(x, y)| x.true_margin_mts != y.true_margin_mts));
    }

    #[test]
    fn quantize_floors_to_step() {
        assert_eq!(quantize(799), 600);
        assert_eq!(quantize(800), 800);
        assert_eq!(quantize(1015), 1000);
        assert_eq!(quantize(0), 0);
    }

    #[test]
    fn labels_follow_brand_letter() {
        let p = pop();
        let first = &p.modules()[0];
        assert!(first.spec.label().starts_with('A'));
        assert!(p.modules().iter().any(|m| m.spec.label().starts_with('D')));
    }
}
