//! Model of the LANL Trinitite on-DIMM temperature dataset
//! (Section II-A).
//!
//! The paper contextualizes its testbed temperatures against three
//! million on-DIMM sensor measurements from Trinitite: minimum 16 °C
//! (the machine-room ambient), with the testbed's 43 °C idle reading
//! hotter than 99 % of all measurements, its 53 °C active reading
//! hotter than 99.85 %, and the 60 °C thermal-chamber reading hotter
//! than 99.991 %. This module encodes a distribution consistent with
//! those anchors so thermal questions ("how often would a deployment
//! actually see chamber-like temperatures?") can be answered by
//! sampling.

use crate::stats::sample_normal;
use rand::Rng;

/// The Trinitite on-DIMM temperature distribution.
///
/// A truncated normal around a cool operating point with a thin upper
/// tail, pinned to the paper's published percentile anchors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrinititeModel {
    /// Mean on-DIMM temperature, °C.
    pub mean_c: f64,
    /// Standard deviation, °C.
    pub std_c: f64,
    /// Hard minimum (machine-room ambient), °C.
    pub min_c: f64,
}

impl Default for TrinititeModel {
    fn default() -> TrinititeModel {
        // N(28, 6.5) truncated at 16 °C puts 43/53/60 °C at roughly
        // the 99 / 99.9+ / 99.99+ percentiles the paper reports.
        TrinititeModel {
            mean_c: 28.0,
            std_c: 6.5,
            min_c: 16.0,
        }
    }
}

impl TrinititeModel {
    /// Samples one on-DIMM temperature measurement.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        sample_normal(rng, self.mean_c, self.std_c).max(self.min_c)
    }

    /// Estimates the fraction of measurements below `celsius` by
    /// Monte Carlo (`trials` samples).
    pub fn percentile_below<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        celsius: f64,
        trials: usize,
    ) -> f64 {
        let below = (0..trials).filter(|_| self.sample(rng) < celsius).count();
        below as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn minimum_is_sixteen() {
        let model = TrinititeModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let min = (0..100_000)
            .map(|_| model.sample(&mut rng))
            .fold(f64::MAX, f64::min);
        assert!(min >= 16.0);
        assert!(min < 17.0, "the floor is actually reached: {min}");
    }

    #[test]
    fn testbed_percentile_anchors_hold() {
        let model = TrinititeModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 200_000;
        // 43 °C idle: hotter than ~99 % of Trinitite.
        let p43 = model.percentile_below(&mut rng, 43.0, trials);
        assert!(p43 > 0.975 && p43 < 0.999, "p(< 43C) = {p43}");
        // 53 °C active: hotter than 99.85 %.
        let p53 = model.percentile_below(&mut rng, 53.0, trials);
        assert!(p53 > 0.995, "p(< 53C) = {p53}");
        // 60 °C chamber: hotter than 99.991 %.
        let p60 = model.percentile_below(&mut rng, 60.0, trials);
        assert!(p60 > 0.9995, "p(< 60C) = {p60}");
        // And the ordering is strict.
        assert!(p43 < p53 && p53 <= p60);
    }

    #[test]
    fn chamber_conditions_are_vanishingly_rare_in_deployment() {
        // The operational argument: Hetero-DMR's 45 °C-ambient error
        // rates describe conditions a real HPC room essentially never
        // reaches.
        let model = TrinititeModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let above_60 = 1.0 - model.percentile_below(&mut rng, 60.0, 200_000);
        assert!(above_60 < 5e-4, "fraction above 60C: {above_60}");
    }
}
