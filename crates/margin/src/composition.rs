//! Channel- and node-level margin composition (Section III-D).
//!
//! A channel's usable margin is set by whichever module is chosen to
//! run unsafely fast; Hetero-DMR's **margin-aware selection** picks the
//! module with the highest margin, while a naive (margin-unaware)
//! policy just takes the first module. A node interleaves data across
//! channels, so its usable margin is the *minimum* across its channels
//! (the paper's gem5 experiments show per-channel heterogeneous rates
//! perform like running every channel at the slowest one).

/// How the module to operate unsafely fast is chosen within a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionPolicy {
    /// Pick the module with the highest measured margin (Hetero-DMR).
    MarginAware,
    /// Pick the first module regardless of margin (baseline).
    MarginUnaware,
}

/// The usable margin of a channel under `policy`, given its modules'
/// measured margins in slot order.
///
/// Returns 0 for an empty channel.
pub fn channel_margin(module_margins_mts: &[u32], policy: SelectionPolicy) -> u32 {
    match policy {
        SelectionPolicy::MarginAware => module_margins_mts.iter().copied().max().unwrap_or(0),
        SelectionPolicy::MarginUnaware => module_margins_mts.first().copied().unwrap_or(0),
    }
}

/// The usable margin of a node: the minimum of its channels' margins
/// (interleaving makes the slowest channel the bottleneck).
///
/// Returns 0 for a node with no channels.
pub fn node_margin(channel_margins_mts: &[u32]) -> u32 {
    channel_margins_mts.iter().copied().min().unwrap_or(0)
}

/// Rounds a margin down to the 200 MT/s granularity the rest of the
/// system plans in (the paper groups nodes at 0.8 / 0.6 / 0 GT/s).
pub fn usable_group(margin_mts: u32, group_step_mts: u32) -> u32 {
    margin_mts / group_step_mts * group_step_mts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aware_takes_max_unaware_takes_first() {
        let margins = [600, 1000];
        assert_eq!(channel_margin(&margins, SelectionPolicy::MarginAware), 1000);
        assert_eq!(
            channel_margin(&margins, SelectionPolicy::MarginUnaware),
            600
        );
    }

    #[test]
    fn aware_never_worse_than_unaware() {
        for margins in [[0, 0], [800, 600], [600, 800], [1200, 1200]] {
            assert!(
                channel_margin(&margins, SelectionPolicy::MarginAware)
                    >= channel_margin(&margins, SelectionPolicy::MarginUnaware)
            );
        }
    }

    #[test]
    fn node_is_bottlenecked_by_slowest_channel() {
        assert_eq!(node_margin(&[800, 800, 600, 800]), 600);
        assert_eq!(node_margin(&[800; 12]), 800);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(channel_margin(&[], SelectionPolicy::MarginAware), 0);
        assert_eq!(channel_margin(&[], SelectionPolicy::MarginUnaware), 0);
        assert_eq!(node_margin(&[]), 0);
    }

    #[test]
    fn grouping_floors() {
        assert_eq!(usable_group(799, 200), 600);
        assert_eq!(usable_group(800, 200), 800);
        assert_eq!(usable_group(950, 200), 800);
    }
}
