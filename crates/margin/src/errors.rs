//! Per-module error-rate model (Figure 6 of the paper).
//!
//! The paper stress-tests every module for one hour at its highest
//! bootable data rate and records corrected errors (CE) and
//! uncorrected errors (UE), at 23 °C and in a 45 °C thermal chamber,
//! with and without latency margins. Its aggregate findings, which
//! this model reproduces:
//!
//! * many modules show **zero** errors (e.g. C22–C27 are "not plotted");
//! * rates span orders of magnitude across modules (lognormal here);
//! * at 45 °C the frequency-margin error rate is ~4× the 23 °C rate;
//! * with latency margins also exploited the 45 °C rate is ~2× its
//!   23 °C counterpart;
//! * populating every channel/slot halves the per-module rate (each
//!   module is accessed half as often) — the memory *system* keeps the
//!   same 800 MT/s margin.

use crate::population::ModuleSpec;
use crate::stats::sample_lognormal;
use rand::Rng;

/// The four stress-test conditions of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestCondition {
    /// Frequency margin only, 23 °C ambient.
    Freq23C,
    /// Frequency margin only, 45 °C chamber.
    Freq45C,
    /// Frequency + latency margins, 23 °C ambient.
    FreqLat23C,
    /// Frequency + latency margins, 45 °C chamber.
    FreqLat45C,
}

impl TestCondition {
    /// All conditions in Figure 6 order.
    pub const ALL: [TestCondition; 4] = [
        TestCondition::Freq23C,
        TestCondition::Freq45C,
        TestCondition::FreqLat23C,
        TestCondition::FreqLat45C,
    ];
}

/// CE/UE rates for one module at its highest bootable rate, per hour
/// of stress test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProfile {
    /// Corrected errors per hour, frequency margin, 23 °C.
    pub ce_freq_23c: f64,
    /// Uncorrected errors per hour, frequency margin, 23 °C.
    pub ue_freq_23c: f64,
    /// Temperature multiplier for frequency-only operation
    /// (~4× on average across the population).
    pub hot_multiplier_freq: f64,
    /// Additional multiplier when latency margins are also exploited
    /// at 23 °C.
    pub lat_multiplier: f64,
    /// Temperature multiplier when both margins are exploited
    /// (~2× on average).
    pub hot_multiplier_freq_lat: f64,
}

impl ErrorProfile {
    /// Samples a module's error profile.
    ///
    /// Roughly 30 % of modules show zero errors at their highest
    /// bootable rate; the rest draw from a lognormal spanning roughly
    /// 1–10⁵ errors/hour. About 6 % of erroring modules also show UEs.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, _spec: &ModuleSpec) -> ErrorProfile {
        let error_free = rng.random_bool(0.3);
        let ce = if error_free {
            0.0
        } else {
            sample_lognormal(rng, 4.0, 2.0) // median ≈ 55/h
        };
        let ue = if !error_free && rng.random_bool(0.06) {
            sample_lognormal(rng, 0.0, 1.0) // a handful per hour
        } else {
            0.0
        };
        ErrorProfile {
            ce_freq_23c: ce,
            ue_freq_23c: ue,
            hot_multiplier_freq: 4.0 * sample_lognormal(rng, 0.0, 0.25),
            lat_multiplier: 1.0 + sample_lognormal(rng, 0.0, 0.5),
            hot_multiplier_freq_lat: 2.0 * sample_lognormal(rng, 0.0, 0.25),
        }
    }

    /// Corrected errors per hour under `condition`.
    pub fn ce_per_hour(&self, condition: TestCondition) -> f64 {
        match condition {
            TestCondition::Freq23C => self.ce_freq_23c,
            TestCondition::Freq45C => self.ce_freq_23c * self.hot_multiplier_freq,
            TestCondition::FreqLat23C => self.ce_freq_23c * self.lat_multiplier,
            TestCondition::FreqLat45C => {
                self.ce_freq_23c * self.lat_multiplier * self.hot_multiplier_freq_lat
            }
        }
    }

    /// Uncorrected errors per hour under `condition` (scaled with the
    /// same multipliers).
    pub fn ue_per_hour(&self, condition: TestCondition) -> f64 {
        match condition {
            TestCondition::Freq23C => self.ue_freq_23c,
            TestCondition::Freq45C => self.ue_freq_23c * self.hot_multiplier_freq,
            TestCondition::FreqLat23C => self.ue_freq_23c * self.lat_multiplier,
            TestCondition::FreqLat45C => {
                self.ue_freq_23c * self.lat_multiplier * self.hot_multiplier_freq_lat
            }
        }
    }

    /// Whether the one-hour stress test records any error at all under
    /// `condition` (unplotted modules in Figure 6).
    pub fn error_free(&self, condition: TestCondition) -> bool {
        self.ce_per_hour(condition) < 1.0 && self.ue_per_hour(condition) < 1.0
    }
}

/// Error rate of a *fully populated* memory system relative to the sum
/// of its modules' solo rates: with two modules per channel each module
/// serves half the accesses, halving its error rate (Section II-C).
pub fn system_rate_from_solo(solo_rate_per_hour: f64, modules_per_channel: usize) -> f64 {
    solo_rate_per_hour / modules_per_channel as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brand::Brand;
    use crate::population::{ModuleCondition, ModuleSpec};
    use dram::organization::ModuleOrganization;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> ModuleSpec {
        ModuleSpec {
            index: 1,
            brand: Brand::A,
            organization: ModuleOrganization::ddr4_3200_9cpr_dual_rank(),
            condition: ModuleCondition::New,
            manufactured_year: 2019,
        }
    }

    fn profiles(n: usize) -> Vec<ErrorProfile> {
        let mut rng = StdRng::seed_from_u64(99);
        let s = spec();
        (0..n).map(|_| ErrorProfile::sample(&mut rng, &s)).collect()
    }

    #[test]
    fn some_modules_are_error_free() {
        let ps = profiles(200);
        let zero = ps
            .iter()
            .filter(|p| p.error_free(TestCondition::Freq23C))
            .count();
        assert!(zero > 30 && zero < 120, "zero-error modules: {zero}");
    }

    #[test]
    fn heat_multiplies_error_rate_about_4x() {
        let ps = profiles(500);
        let (mut cold, mut hot) = (0.0, 0.0);
        for p in &ps {
            cold += p.ce_per_hour(TestCondition::Freq23C);
            hot += p.ce_per_hour(TestCondition::Freq45C);
        }
        let ratio = hot / cold;
        assert!(ratio > 3.0 && ratio < 5.5, "hot/cold ratio {ratio}");
    }

    #[test]
    fn freq_lat_heat_ratio_about_2x() {
        let ps = profiles(500);
        let (mut cold, mut hot) = (0.0, 0.0);
        for p in &ps {
            cold += p.ce_per_hour(TestCondition::FreqLat23C);
            hot += p.ce_per_hour(TestCondition::FreqLat45C);
        }
        let ratio = hot / cold;
        assert!(ratio > 1.5 && ratio < 2.8, "ratio {ratio}");
    }

    #[test]
    fn latency_margins_worsen_errors() {
        let ps = profiles(300);
        let freq: f64 = ps
            .iter()
            .map(|p| p.ce_per_hour(TestCondition::Freq23C))
            .sum();
        let both: f64 = ps
            .iter()
            .map(|p| p.ce_per_hour(TestCondition::FreqLat23C))
            .sum();
        assert!(both > freq);
    }

    #[test]
    fn ue_rarer_than_ce() {
        let ps = profiles(500);
        let with_ce = ps.iter().filter(|p| p.ce_freq_23c > 0.0).count();
        let with_ue = ps.iter().filter(|p| p.ue_freq_23c > 0.0).count();
        assert!(with_ue < with_ce / 4, "ce {with_ce} ue {with_ue}");
    }

    #[test]
    fn full_system_halves_per_module_rate() {
        assert_eq!(system_rate_from_solo(100.0, 2), 50.0);
        assert_eq!(system_rate_from_solo(0.0, 2), 0.0);
    }

    #[test]
    fn rates_are_nonnegative() {
        for p in profiles(200) {
            for c in TestCondition::ALL {
                assert!(p.ce_per_hour(c) >= 0.0);
                assert!(p.ue_per_hour(c) >= 0.0);
            }
        }
    }
}
