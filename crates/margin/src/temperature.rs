//! Ambient → on-DIMM temperature model (Section II-A of the paper).
//!
//! The paper's testbed reports 43 °C idle / 53 °C active DIMM
//! temperatures at 23 °C ambient and ~60 °C active in the 45 °C
//! chamber, and contextualizes them against three million on-DIMM
//! sensor measurements from LANL's Trinitite system (minimum 16 °C;
//! the testbed's idle and active temperatures exceed 99 % and 99.85 %
//! of all Trinitite readings, and the 60 °C chamber reading exceeds
//! 99.991 %).

/// Ambient temperatures used in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmbientTemperature {
    /// Room temperature (23 °C).
    Room23C,
    /// The thermal chamber (45 °C), emulating cooling failures /
    /// temperature spikes.
    Chamber45C,
}

impl AmbientTemperature {
    /// Ambient temperature in °C.
    pub fn celsius(self) -> f64 {
        match self {
            AmbientTemperature::Room23C => 23.0,
            AmbientTemperature::Chamber45C => 45.0,
        }
    }

    /// On-DIMM temperature when the system is idle.
    pub fn dimm_idle_celsius(self) -> f64 {
        // 20 °C above ambient at idle on the paper's testbed.
        self.celsius() + 20.0
    }

    /// On-DIMM temperature under a memory stress test.
    pub fn dimm_active_celsius(self) -> f64 {
        match self {
            // 53 °C measured at 23 °C ambient.
            AmbientTemperature::Room23C => 53.0,
            // 60 °C measured at 45 °C ambient (better airflow coupling
            // at high ambient keeps the delta smaller).
            AmbientTemperature::Chamber45C => 60.0,
        }
    }

    /// Fraction of the LANL Trinitite on-DIMM temperature measurements
    /// that fall below this condition's *active* DIMM temperature —
    /// the paper's evidence that the testbed runs hotter than real HPC
    /// deployments.
    pub fn trinitite_percentile_below_active(self) -> f64 {
        match self {
            AmbientTemperature::Room23C => 0.9985,
            AmbientTemperature::Chamber45C => 0.99991,
        }
    }
}

/// An epoch-granular ambient-temperature schedule: the system sits at
/// `baseline`, spends `[onset_epoch, onset_epoch + duration_epochs)`
/// at `excursion`, then returns to `baseline`. This models the
/// cooling-failure / temperature-spike scenario the 45 °C chamber
/// emulates (Section II-A) as a *transient* rather than a permanent
/// condition, which is what an online margin governor has to track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemperatureTransient {
    /// Ambient before and after the excursion.
    pub baseline: AmbientTemperature,
    /// Ambient during the excursion window.
    pub excursion: AmbientTemperature,
    /// First epoch of the excursion.
    pub onset_epoch: u64,
    /// Length of the excursion in epochs (0 = no excursion).
    pub duration_epochs: u64,
}

impl TemperatureTransient {
    /// A schedule that stays at `baseline` forever.
    pub fn steady(baseline: AmbientTemperature) -> TemperatureTransient {
        TemperatureTransient {
            baseline,
            excursion: baseline,
            onset_epoch: 0,
            duration_epochs: 0,
        }
    }

    /// The canonical disturbance: room temperature with a machine-room
    /// cooling failure pushing ambient to the 45 °C chamber condition
    /// for `duration_epochs` starting at `onset_epoch`.
    pub fn cooling_failure(onset_epoch: u64, duration_epochs: u64) -> TemperatureTransient {
        TemperatureTransient {
            baseline: AmbientTemperature::Room23C,
            excursion: AmbientTemperature::Chamber45C,
            onset_epoch,
            duration_epochs,
        }
    }

    /// Ambient temperature at `epoch`.
    pub fn ambient_at(self, epoch: u64) -> AmbientTemperature {
        if epoch >= self.onset_epoch && epoch - self.onset_epoch < self.duration_epochs {
            self.excursion
        } else {
            self.baseline
        }
    }

    /// Whether `epoch` runs hotter than the baseline condition.
    pub fn is_excursion(self, epoch: u64) -> bool {
        self.ambient_at(epoch) != self.baseline
    }
}

/// Maximum operating temperature DDR4 devices are rated for.
pub const DDR4_MAX_OPERATING_CELSIUS: f64 = 95.0;

/// The minimum temperature observed in the Trinitite dataset,
/// suggesting its machine-room ambient temperature.
pub const TRINITITE_MIN_CELSIUS: f64 = 16.0;

/// Average DIMM temperature rise between operating at the specified
/// rate and at the maximum bootable rate (<1 °C in the paper —
/// frequency scaling alone does not meaningfully heat DRAM).
pub const OVERCLOCK_TEMPERATURE_RISE_CELSIUS: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reported_temperatures() {
        let room = AmbientTemperature::Room23C;
        assert_eq!(room.celsius(), 23.0);
        assert_eq!(room.dimm_idle_celsius(), 43.0);
        assert_eq!(room.dimm_active_celsius(), 53.0);

        let hot = AmbientTemperature::Chamber45C;
        assert_eq!(hot.celsius(), 45.0);
        assert_eq!(hot.dimm_active_celsius(), 60.0);
    }

    #[test]
    fn all_conditions_within_ddr4_rating() {
        for amb in [AmbientTemperature::Room23C, AmbientTemperature::Chamber45C] {
            assert!(
                amb.dimm_active_celsius() + OVERCLOCK_TEMPERATURE_RISE_CELSIUS
                    < DDR4_MAX_OPERATING_CELSIUS
            );
        }
    }

    #[test]
    fn transient_window_is_half_open() {
        let t = TemperatureTransient::cooling_failure(10, 5);
        assert_eq!(t.ambient_at(9), AmbientTemperature::Room23C);
        assert_eq!(t.ambient_at(10), AmbientTemperature::Chamber45C);
        assert_eq!(t.ambient_at(14), AmbientTemperature::Chamber45C);
        assert_eq!(t.ambient_at(15), AmbientTemperature::Room23C);
        assert!(t.is_excursion(12));
        assert!(!t.is_excursion(15));

        let steady = TemperatureTransient::steady(AmbientTemperature::Room23C);
        assert!(!steady.is_excursion(0));
        assert_eq!(steady.ambient_at(1_000_000), AmbientTemperature::Room23C);
    }

    #[test]
    fn testbed_hotter_than_hpc_reality() {
        let room = AmbientTemperature::Room23C;
        assert!(room.trinitite_percentile_below_active() > 0.99);
        assert!(
            AmbientTemperature::Chamber45C.trinitite_percentile_below_active()
                > room.trinitite_percentile_below_active()
        );
    }
}
