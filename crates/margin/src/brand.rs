//! Manufacturer brands and their margin profiles.
//!
//! The 119 modules in the paper's study come from four companies:
//! brands A–C are the three major memory-chip manufacturers; brand D
//! is a small module-only vendor. The paper finds A–C average
//! 770 MT/s of margin (27 % of the labelled rate) while D averages
//! just 213 MT/s, and focuses on A–C thereafter.

use std::fmt;

/// A memory module manufacturer, anonymized as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Brand {
    /// Major chip manufacturer A.
    A,
    /// Major chip manufacturer B.
    B,
    /// Major chip manufacturer C.
    C,
    /// Small module-only vendor D.
    D,
}

impl Brand {
    /// All brands in study order.
    pub const ALL: [Brand; 4] = [Brand::A, Brand::B, Brand::C, Brand::D];

    /// The three mainstream server brands the paper focuses on.
    pub const MAINSTREAM: [Brand; 3] = [Brand::A, Brand::B, Brand::C];

    /// Whether this brand manufactures its own DRAM chips.
    pub fn is_chip_manufacturer(self) -> bool {
        self != Brand::D
    }

    /// Mean *true* (pre-measurement) frequency margin in MT/s for
    /// modules with 9 chips/rank, fit to Figures 2–3 of the paper.
    ///
    /// Brands A–C are statistically indistinguishable from each other
    /// in the study, so they share a profile; the small vendor D sits
    /// far lower.
    pub fn margin_mean_9cpr_mts(self) -> f64 {
        match self {
            Brand::A | Brand::B | Brand::C => 950.0,
            Brand::D => 330.0,
        }
    }

    /// Standard deviation of the true margin for 9 chips/rank modules.
    pub fn margin_std_9cpr_mts(self) -> f64 {
        match self {
            Brand::A | Brand::B | Brand::C => 170.0,
            Brand::D => 120.0,
        }
    }

    /// Mean true margin for 18 chips/rank modules: synchronizing twice
    /// as many chips at high frequency is harder, so the mean is lower
    /// and the spread wider (2.1× the 9-chip STDev in the paper).
    pub fn margin_mean_18cpr_mts(self) -> f64 {
        match self {
            Brand::A | Brand::B | Brand::C => 700.0,
            Brand::D => 320.0,
        }
    }

    /// Standard deviation of the true margin for 18 chips/rank modules.
    pub fn margin_std_18cpr_mts(self) -> f64 {
        match self {
            Brand::A | Brand::B | Brand::C => 330.0,
            Brand::D => 150.0,
        }
    }
}

impl fmt::Display for Brand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Brand::A => "Brand A",
            Brand::B => "Brand B",
            Brand::C => "Brand C",
            Brand::D => "Brand D",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mainstream_excludes_d() {
        assert!(!Brand::MAINSTREAM.contains(&Brand::D));
        assert_eq!(Brand::MAINSTREAM.len(), 3);
    }

    #[test]
    fn d_is_module_only_vendor() {
        assert!(!Brand::D.is_chip_manufacturer());
        assert!(Brand::A.is_chip_manufacturer());
    }

    #[test]
    fn abc_profiles_identical_d_lower() {
        for b in [Brand::B, Brand::C] {
            assert_eq!(b.margin_mean_9cpr_mts(), Brand::A.margin_mean_9cpr_mts());
        }
        assert!(Brand::D.margin_mean_9cpr_mts() < Brand::A.margin_mean_9cpr_mts() / 2.0);
    }

    #[test]
    fn eighteen_chip_spread_is_wider() {
        // Paper: 18 chips/rank STDev ≈ 2.1× the 9 chips/rank STDev.
        let ratio = Brand::A.margin_std_18cpr_mts() / Brand::A.margin_std_9cpr_mts();
        assert!(ratio > 1.7 && ratio < 2.5, "ratio {ratio}");
    }
}
