//! The simulated stress-test / margin-measurement procedure.
//!
//! The paper measures a module's frequency margin by installing it
//! alone, stepping the data rate in 200 MT/s increments (a BIOS
//! limitation), and accepting the highest rate at which the module
//! still carries out 99.999 %+ of accesses without error during a
//! one-hour stress test at standard 1.2 V. This module reproduces that
//! procedure against the population model's ground truth, and also
//! simulates the one-hour CE/UE counting runs of Figure 6.

use crate::errors::{ErrorProfile, TestCondition};
use crate::population::SYSTEM_RATE_CAP_MTS;
use dram::rate::DataRate;
use rand::Rng;
use telemetry::{Counter, Scope};

/// Parameters of the measurement procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressConfig {
    /// Data-rate step (the paper's BIOS allows 200 MT/s).
    pub step_mts: u32,
    /// System-level data-rate cap of the testbed.
    pub rate_cap_mts: u32,
    /// Required fraction of correct accesses (the paper's 99.999 %+).
    pub accuracy_threshold: f64,
    /// Stress duration in hours.
    pub hours: f64,
}

impl Default for StressConfig {
    fn default() -> StressConfig {
        StressConfig {
            step_mts: 200,
            rate_cap_mts: SYSTEM_RATE_CAP_MTS,
            accuracy_threshold: 0.99999,
            hours: 1.0,
        }
    }
}

/// Telemetry counters over the profiling procedure: how many modules
/// were measured, how many rate steps that took, and the CE/UE totals
/// of timed stress runs. Detached until [`StressMeter::bind`] folds
/// the handles into a registry scope.
#[derive(Debug, Default)]
pub struct StressMeter {
    modules_profiled: Counter,
    steps_tested: Counter,
    stress_runs: Counter,
    ce_observed: Counter,
    ue_observed: Counter,
}

impl StressMeter {
    /// Rebinds every counter into `scope`, carrying prior values over.
    pub fn bind(&mut self, scope: &Scope) {
        let rebind = |name: &str, old: &Counter| {
            let fresh = scope.counter(name);
            fresh.add(old.get());
            fresh
        };
        self.modules_profiled = rebind("modules_profiled", &self.modules_profiled);
        self.steps_tested = rebind("steps_tested", &self.steps_tested);
        self.stress_runs = rebind("stress_runs", &self.stress_runs);
        self.ce_observed = rebind("ce_observed", &self.ce_observed);
        self.ue_observed = rebind("ue_observed", &self.ue_observed);
    }

    /// Modules put through the stepping procedure.
    pub fn modules_profiled(&self) -> u64 {
        self.modules_profiled.get()
    }

    /// Individual rate steps attempted across all modules.
    pub fn steps_tested(&self) -> u64 {
        self.steps_tested.get()
    }

    /// Timed stress runs performed.
    pub fn stress_runs(&self) -> u64 {
        self.stress_runs.get()
    }
}

/// Measures a module's frequency margin the way the paper's testbed
/// does: step up from the labelled rate until the module no longer
/// meets the accuracy threshold (its true margin) or the system cap is
/// hit; report the last passing step.
///
/// Returns the measured margin in MT/s.
pub fn measure_margin(specified: DataRate, true_margin_mts: u32, config: &StressConfig) -> u32 {
    measure_impl(specified, true_margin_mts, config, None)
}

/// [`measure_margin`] with profiling-effort accounting on `meter`.
pub fn measure_margin_metered(
    specified: DataRate,
    true_margin_mts: u32,
    config: &StressConfig,
    meter: &StressMeter,
) -> u32 {
    measure_impl(specified, true_margin_mts, config, Some(meter))
}

fn measure_impl(
    specified: DataRate,
    true_margin_mts: u32,
    config: &StressConfig,
    meter: Option<&StressMeter>,
) -> u32 {
    if let Some(m) = meter {
        m.modules_profiled.inc();
    }
    let mut passing = 0u32;
    let mut candidate = config.step_mts;
    loop {
        let rate = specified.mts() + candidate;
        if rate > config.rate_cap_mts {
            break;
        }
        // Stepping to this candidate is one one-hour stress run on the
        // testbed — the unit of profiling effort.
        if let Some(m) = meter {
            m.steps_tested.inc();
        }
        if candidate > true_margin_mts {
            break;
        }
        passing = candidate;
        candidate += config.step_mts;
    }
    passing
}

/// Outcome of one timed stress run (Figure 6's per-module bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressOutcome {
    /// Corrected errors observed.
    pub corrected: u64,
    /// Uncorrected errors observed.
    pub uncorrected: u64,
}

impl StressOutcome {
    /// Whether the run was completely error free (unplotted in Fig 6).
    pub fn error_free(&self) -> bool {
        self.corrected == 0 && self.uncorrected == 0
    }
}

/// Runs a simulated stress test of `config.hours` against a module's
/// error profile under `condition`, Poisson-sampling the error counts.
pub fn run_stress_test<R: Rng + ?Sized>(
    rng: &mut R,
    profile: &ErrorProfile,
    condition: TestCondition,
    config: &StressConfig,
) -> StressOutcome {
    StressOutcome {
        corrected: sample_poisson(rng, profile.ce_per_hour(condition) * config.hours),
        uncorrected: sample_poisson(rng, profile.ue_per_hour(condition) * config.hours),
    }
}

/// [`run_stress_test`] with run and CE/UE accounting on `meter`.
pub fn run_stress_test_metered<R: Rng + ?Sized>(
    rng: &mut R,
    profile: &ErrorProfile,
    condition: TestCondition,
    config: &StressConfig,
    meter: &StressMeter,
) -> StressOutcome {
    let outcome = run_stress_test(rng, profile, condition, config);
    meter.stress_runs.inc();
    meter.ce_observed.add(outcome.corrected);
    meter.ue_observed.add(outcome.uncorrected);
    outcome
}

/// Poisson sampler: Knuth's algorithm for small λ, normal
/// approximation beyond.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    } else {
        let sample = crate::stats::sample_normal(rng, lambda, lambda.sqrt());
        sample.round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measurement_floors_to_step() {
        let cfg = StressConfig::default();
        assert_eq!(measure_margin(DataRate::MT3200, 799, &cfg), 600);
        assert_eq!(measure_margin(DataRate::MT3200, 800, &cfg), 800);
        assert_eq!(measure_margin(DataRate::MT3200, 150, &cfg), 0);
    }

    #[test]
    fn measurement_respects_system_cap() {
        let cfg = StressConfig::default();
        // A 3200 module with a huge true margin still measures 800.
        assert_eq!(measure_margin(DataRate::MT3200, 1400, &cfg), 800);
        // A 2400 module with the same true margin measures it fully.
        assert_eq!(measure_margin(DataRate::MT2400, 1400, &cfg), 1400);
    }

    #[test]
    fn finer_step_measures_more() {
        let fine = StressConfig {
            step_mts: 100,
            ..StressConfig::default()
        };
        let coarse = StressConfig::default();
        assert_eq!(measure_margin(DataRate::MT2400, 750, &fine), 700);
        assert_eq!(measure_margin(DataRate::MT2400, 750, &coarse), 600);
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        for &lambda in &[0.5, 5.0, 50.0, 500.0] {
            let n = 4_000;
            let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda {lambda} mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        assert_eq!(sample_poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn stress_run_scales_with_duration() {
        let mut rng = StdRng::seed_from_u64(5);
        let profile = ErrorProfile {
            ce_freq_23c: 100.0,
            ue_freq_23c: 0.0,
            hot_multiplier_freq: 4.0,
            lat_multiplier: 2.0,
            hot_multiplier_freq_lat: 2.0,
        };
        let one = StressConfig::default();
        let ten = StressConfig {
            hours: 10.0,
            ..StressConfig::default()
        };
        let short: u64 = (0..50)
            .map(|_| run_stress_test(&mut rng, &profile, TestCondition::Freq23C, &one).corrected)
            .sum();
        let long: u64 = (0..50)
            .map(|_| run_stress_test(&mut rng, &profile, TestCondition::Freq23C, &ten).corrected)
            .sum();
        let ratio = long as f64 / short as f64;
        assert!(ratio > 8.0 && ratio < 12.0, "ratio {ratio}");
    }

    #[test]
    fn error_free_profile_gives_error_free_outcome() {
        let mut rng = StdRng::seed_from_u64(6);
        let profile = ErrorProfile {
            ce_freq_23c: 0.0,
            ue_freq_23c: 0.0,
            hot_multiplier_freq: 4.0,
            lat_multiplier: 2.0,
            hot_multiplier_freq_lat: 2.0,
        };
        let out = run_stress_test(
            &mut rng,
            &profile,
            TestCondition::FreqLat45C,
            &StressConfig::default(),
        );
        assert!(out.error_free());
    }
}
