//! The 1.35 V investigation of Section II-A.
//!
//! The paper suspected a system-level data-rate cap at 4000 MT/s and
//! tested it by raising VDD from the standard 1.2 V to 1.35 V:
//!
//! * **not one** of the 3200 MT/s modules already running at
//!   4000 MT/s went any faster — consistent with an external cap, not
//!   a module limitation;
//! * **22 of the 27** 3200 MT/s modules that could *not* reach
//!   4000 MT/s at 1.2 V did improve at 1.35 V — the voltage headroom
//!   is real where the cap is not binding.
//!
//! (All performance/reliability experiments elsewhere stay at 1.2 V;
//! the paper — and Hetero-DMR — never overvolts, both to protect
//! hardware and to avoid ageing effects.)

use crate::population::{MeasuredModule, ModulePopulation, SYSTEM_RATE_CAP_MTS};
use crate::stats::sample_normal;
use dram::rate::DataRate;
use rand::Rng;

/// Supply voltages considered in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vdd {
    /// DDR4 standard 1.2 V — every real experiment uses this.
    V1p2,
    /// The overvolted probe used only to investigate the rate cap.
    V1p35,
}

impl Vdd {
    /// Volts.
    pub fn volts(self) -> f64 {
        match self {
            Vdd::V1p2 => 1.2,
            Vdd::V1p35 => 1.35,
        }
    }
}

/// The extra *true* margin a module gains at 1.35 V: most modules pick
/// up one to two 200 MT/s steps (signal-integrity headroom grows with
/// drive strength); a minority gain nothing.
pub fn overvolt_margin_gain<R: Rng + ?Sized>(rng: &mut R, module: &MeasuredModule) -> u32 {
    let _ = module;
    if rng.random_bool(0.82) {
        let gain = sample_normal(rng, 300.0, 120.0).max(0.0);
        (gain as u32) / 200 * 200
    } else {
        0
    }
}

/// Outcome of the rate-cap investigation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapInvestigation {
    /// 3200 MT/s modules already at the 4000 MT/s cap at 1.2 V.
    pub capped_total: usize,
    /// …of which ran faster than 4000 MT/s at 1.35 V (the paper: 0).
    pub capped_improved: usize,
    /// 3200 MT/s modules below the cap at 1.2 V.
    pub uncapped_total: usize,
    /// …of which improved at 1.35 V (the paper: 22 of 27).
    pub uncapped_improved: usize,
}

impl CapInvestigation {
    /// The paper's conclusion: the cap is external to the modules.
    pub fn cap_is_system_level(&self) -> bool {
        self.capped_improved == 0 && self.uncapped_improved * 2 > self.uncapped_total
    }
}

/// Re-runs the Section II-A overvolting probe on a population.
pub fn investigate_rate_cap<R: Rng + ?Sized>(
    pop: &ModulePopulation,
    rng: &mut R,
) -> CapInvestigation {
    let mut result = CapInvestigation {
        capped_total: 0,
        capped_improved: 0,
        uncapped_total: 0,
        uncapped_improved: 0,
    };
    for module in pop.mainstream() {
        if module.spec.organization.specified_rate != DataRate::MT3200 {
            continue;
        }
        let cap_margin = SYSTEM_RATE_CAP_MTS - 3200;
        let gain = overvolt_margin_gain(rng, module);
        if module.measured_margin_mts >= cap_margin {
            // Already at the testbed cap: extra true margin cannot be
            // observed — the cap binds.
            result.capped_total += 1;
            // The observable rate never exceeds the system cap.
        } else {
            result.uncapped_total += 1;
            let new_true = module.true_margin_mts + gain;
            let new_observed = crate::population::quantize(new_true).min(cap_margin);
            if new_observed > module.measured_margin_mts {
                result.uncapped_improved += 1;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn voltages() {
        assert_eq!(Vdd::V1p2.volts(), 1.2);
        assert_eq!(Vdd::V1p35.volts(), 1.35);
    }

    #[test]
    fn capped_modules_never_improve_uncapped_mostly_do() {
        let pop = ModulePopulation::paper_study(0xD1A2);
        let mut rng = StdRng::seed_from_u64(0x135);
        let inv = investigate_rate_cap(&pop, &mut rng);
        assert_eq!(inv.capped_improved, 0, "the 4000 MT/s cap binds");
        assert!(inv.capped_total > 20, "many modules sit at the cap");
        assert!(inv.uncapped_total > 10);
        // Paper: 22/27 ≈ 81% improved.
        let frac = inv.uncapped_improved as f64 / inv.uncapped_total as f64;
        assert!((0.5..=1.0).contains(&frac), "improved fraction {frac}");
        assert!(inv.cap_is_system_level());
    }

    #[test]
    fn gains_are_step_quantized() {
        let pop = ModulePopulation::paper_study(1);
        let m = &pop.modules()[0];
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(overvolt_margin_gain(&mut rng, m) % 200, 0);
        }
    }
}
