//! Deterministic parallel experiment engine.
//!
//! Three layers, each usable on its own:
//!
//! - [`seed`] — counter-based RNG stream derivation: a task's seed is
//!   a pure function of `(root_seed, target_id, iteration)`, never of
//!   thread identity, so results are reproducible at any parallelism.
//! - [`pool`] — a bounded scoped-thread worker pool with
//!   order-preserving [`parallel_map`] and chunking-independent
//!   integer reductions ([`parallel_count`], [`parallel_tally`]).
//! - [`windows`] — coarse-grained time-parallel window chains:
//!   [`windows::window_chain`] runs a stateful simulation split into
//!   windows serially, [`windows::speculative_chain`] overlaps future
//!   windows on spare permits and reconciles them deterministically.
//! - [`Scenario`]/[`Runner`] — named, seeded experiment tasks with
//!   buffered output, per-task telemetry snapshots, and panic
//!   isolation; outcomes come back in input order.
//!
//! ```
//! use runner::{Runner, Scenario};
//!
//! let scenarios: Vec<Scenario> = (0..4)
//!     .map(|i| {
//!         Scenario::builder(format!("shard{i}"))
//!             .derived_seed(42)
//!             .task(move |ctx| ctx.say(format!("seed {:#x}", ctx.seed)))
//!             .build()
//!     })
//!     .collect();
//! let outcomes = Runner::new(1).run(scenarios);
//! assert!(outcomes.iter().all(|o| !o.is_failed()));
//! ```

pub mod pool;
mod scenario;
pub mod seed;
pub mod windows;

pub use pool::{jobs, parallel_count, parallel_map, parallel_tally, set_jobs};
pub use scenario::{RunOutcome, RunStatus, Runner, Scenario, ScenarioBuilder, TaskCtx};
