//! The `Scenario`/`Runner` API: named, seeded experiment tasks that
//! execute in parallel with per-task panic isolation.
//!
//! A [`Scenario`] bundles a target name, a counter-derived seed, and a
//! task closure that writes its human-readable report into a
//! [`TaskCtx`] buffer instead of printing. The [`Runner`] executes a
//! batch on the worker pool and returns [`RunOutcome`]s in input
//! order; a panicking task becomes [`RunStatus::Failed`] and the rest
//! of the sweep completes. Because every task's output (text and
//! telemetry snapshot) is buffered per task and reassembled in input
//! order, a sweep's result is byte-identical for any `--jobs` value.

use crate::pool;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use telemetry::trace::{kv, Clock, TraceEvent, Tracer};
use telemetry::{Event, Registry, Snapshot};

/// What a task sees while running: its derived seed plus buffers for
/// everything it wants to surface. Tasks write human-readable output
/// with [`say`](TaskCtx::say) or `write!` (the context implements
/// [`fmt::Write`]) and hand back a telemetry snapshot if they kept
/// one; the runner never lets tasks print directly, which is what
/// keeps interleaving off the output path.
pub struct TaskCtx {
    /// The scenario's seed, derived from `(root, target)` by
    /// [`crate::seed::target_seed`] — never from thread identity.
    pub seed: u64,
    /// Accumulated report text, printed by the caller after the join.
    pub out: String,
    /// The task's telemetry, captured from a task-private registry.
    pub snapshot: Option<Snapshot>,
    /// The task's windowed time-series, captured from a task-private
    /// series store (the health plane's snapshot analogue).
    pub series: Option<telemetry::series::SeriesSnapshot>,
    /// Event-log pressure from the task's registry: total pushes and
    /// ring evictions (see `telemetry::EventLog::dropped`).
    pub events_recorded: u64,
    pub events_dropped: u64,
    /// The retained event window, for verbose diagnostic dumps.
    pub events: Vec<Event>,
}

impl TaskCtx {
    /// Append one line to the task's report.
    pub fn say(&mut self, line: impl AsRef<str>) {
        self.out.push_str(line.as_ref());
        self.out.push('\n');
    }
}

impl fmt::Write for TaskCtx {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.out.push_str(s);
        Ok(())
    }
}

type TaskFn = Box<dyn FnOnce(&mut TaskCtx) + Send>;

/// One named, seeded unit of experiment work.
pub struct Scenario {
    name: String,
    seed: u64,
    task: TaskFn,
    tracer: Option<Tracer>,
}

impl Scenario {
    /// Start building a scenario named `name`.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            seed: 0,
            task: None,
            tracer: None,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Builder for [`Scenario`] (see [`Scenario::builder`]).
pub struct ScenarioBuilder {
    name: String,
    seed: u64,
    task: Option<TaskFn>,
    tracer: Option<Tracer>,
}

impl ScenarioBuilder {
    /// Use `seed` verbatim as the scenario's seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derive the scenario's seed from a sweep-level root seed and the
    /// scenario's own name via [`crate::seed::target_seed`], so every
    /// target gets an independent stream from one root.
    pub fn derived_seed(mut self, root: u64) -> Self {
        self.seed = crate::seed::target_seed(root, &self.name);
        self
    }

    /// The work itself. The closure runs on some worker thread; all of
    /// its output must go through the [`TaskCtx`].
    pub fn task(mut self, f: impl FnOnce(&mut TaskCtx) + Send + 'static) -> Self {
        self.task = Some(Box::new(f));
        self
    }

    /// Record a causal trace of this scenario into `tracer` (the task
    /// closure should share the same tracer for its own spans). The
    /// runner wraps the task in a `task.<name>` span on the tracer's
    /// tick clock and drains the buffer into
    /// [`RunOutcome::trace`] after the task finishes, so traces are
    /// per-task private and deterministic like snapshots.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// # Panics
    /// If no [`task`](ScenarioBuilder::task) was supplied.
    pub fn build(self) -> Scenario {
        Scenario {
            task: self
                .task
                .unwrap_or_else(|| panic!("scenario '{}' built without a task", self.name)),
            name: self.name,
            seed: self.seed,
            tracer: self.tracer,
        }
    }
}

/// How a scenario ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunStatus {
    Completed,
    /// The task panicked; `panic` is the payload message. The rest of
    /// the sweep was unaffected.
    Failed {
        panic: String,
    },
}

/// The result of one scenario: everything the task produced before it
/// finished (or died), plus bookkeeping.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    pub name: String,
    pub seed: u64,
    pub status: RunStatus,
    /// The task's buffered report (possibly partial on failure).
    pub out: String,
    /// The task's telemetry snapshot, if it captured one.
    pub snapshot: Option<Snapshot>,
    /// The task's windowed time-series, if it captured them.
    pub series: Option<telemetry::series::SeriesSnapshot>,
    /// The task's causal trace, when the scenario carried a tracer.
    /// Deterministic: every timestamp comes from a simulation clock
    /// or the tracer's tick counter, never from wall time.
    pub trace: Option<Vec<TraceEvent>>,
    /// Event-log pressure, copied from the [`TaskCtx`].
    pub events_recorded: u64,
    pub events_dropped: u64,
    /// Retained event window, for verbose diagnostic dumps.
    pub events: Vec<Event>,
    /// Wall-clock duration. Non-deterministic by nature — report it on
    /// diagnostic channels only, never in byte-compared output.
    pub wall_ms: u128,
}

impl RunOutcome {
    pub fn is_failed(&self) -> bool {
        matches!(self.status, RunStatus::Failed { .. })
    }
}

/// Executes scenario batches on the worker pool.
///
/// The runner keeps its own registry of run-level telemetry (a
/// `task.<name>` span per scenario plus `tasks_ok`/`tasks_failed`
/// counters), deliberately separate from the tasks' own snapshots so
/// engine bookkeeping never leaks into experiment metrics.
pub struct Runner {
    registry: Registry,
}

impl Runner {
    /// A runner with a process-wide worker budget of `jobs` threads
    /// (`0` = auto-detect). The budget is global to the pool, so the
    /// last-constructed runner's value wins.
    pub fn new(jobs: usize) -> Self {
        pool::set_jobs(jobs);
        Runner {
            registry: Registry::new(),
        }
    }

    /// The runner's own bookkeeping registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Run every scenario, in parallel, returning outcomes in input
    /// order. A panicking task yields [`RunStatus::Failed`] with its
    /// buffered partial output; the other tasks are unaffected.
    pub fn run(&self, scenarios: Vec<Scenario>) -> Vec<RunOutcome> {
        let registry = &self.registry;
        pool::parallel_map(scenarios, |_, scenario| {
            let Scenario {
                name,
                seed,
                task,
                tracer,
            } = scenario;
            let _span = registry.span(&format!("task.{name}"));
            let task_span = tracer
                .as_ref()
                .map(|t| t.begin(format!("task.{name}"), "runner", Clock::Ticks, t.tick()));
            let started = Instant::now();
            let mut ctx = TaskCtx {
                seed,
                out: String::new(),
                snapshot: None,
                series: None,
                events_recorded: 0,
                events_dropped: 0,
                events: Vec::new(),
            };
            let status = match catch_unwind(AssertUnwindSafe(|| task(&mut ctx))) {
                Ok(()) => {
                    registry.counter("tasks_ok").inc();
                    RunStatus::Completed
                }
                Err(payload) => {
                    registry.counter("tasks_failed").inc();
                    RunStatus::Failed {
                        panic: panic_message(payload.as_ref()),
                    }
                }
            };
            let trace = tracer.map(|t| {
                let label = match &status {
                    RunStatus::Completed => "completed",
                    RunStatus::Failed { .. } => "failed",
                };
                // Also unwinds any spans the task left open on panic.
                t.end_with(task_span.unwrap(), t.tick(), vec![kv("status", label)]);
                t.take()
            });
            RunOutcome {
                name,
                seed,
                status,
                out: ctx.out,
                snapshot: ctx.snapshot,
                series: ctx.series,
                trace,
                events_recorded: ctx.events_recorded,
                events_dropped: ctx.events_dropped,
                events: ctx.events,
                wall_ms: started.elapsed().as_millis(),
            }
        })
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    fn sweep(n: usize) -> Vec<Scenario> {
        (0..n)
            .map(|i| {
                Scenario::builder(format!("t{i}"))
                    .derived_seed(0xD1A2)
                    .task(move |ctx| {
                        let mut acc = ctx.seed;
                        for _ in 0..1000 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        writeln!(ctx, "t{i}: {acc:016x}").unwrap();
                    })
                    .build()
            })
            .collect()
    }

    #[test]
    fn outcomes_keep_input_order_and_are_deterministic() {
        let first = Runner::new(0).run(sweep(16));
        let again = Runner::new(0).run(sweep(16));
        for (i, (a, b)) in first.iter().zip(&again).enumerate() {
            assert_eq!(a.name, format!("t{i}"));
            assert_eq!(
                a.out, b.out,
                "task {i} output must not depend on scheduling"
            );
            assert_eq!(a.status, RunStatus::Completed);
        }
    }

    #[test]
    fn panicking_task_is_isolated() {
        let mut scenarios = sweep(3);
        scenarios.insert(
            1,
            Scenario::builder("poisoned")
                .task(|ctx| {
                    ctx.say("about to fail");
                    panic!("injected failure");
                })
                .build(),
        );
        let runner = Runner::new(0);
        let outcomes = runner.run(scenarios);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes[1].is_failed());
        assert_eq!(
            outcomes[1].status,
            RunStatus::Failed {
                panic: "injected failure".to_string()
            }
        );
        assert_eq!(
            outcomes[1].out, "about to fail\n",
            "partial output survives"
        );
        for idx in [0, 2, 3] {
            assert_eq!(outcomes[idx].status, RunStatus::Completed);
            assert!(!outcomes[idx].out.is_empty());
        }
        let snap = runner.registry().snapshot();
        assert_eq!(snap.counter("tasks_ok"), 3);
        assert_eq!(snap.counter("tasks_failed"), 1);
        assert!(snap.get("task.poisoned.wall_ns").is_some());
    }

    #[test]
    #[should_panic(expected = "built without a task")]
    fn builder_requires_a_task() {
        let _ = Scenario::builder("empty").build();
    }

    #[test]
    fn traced_scenarios_emit_a_task_span() {
        let tracer = Tracer::new();
        let inner = tracer.clone();
        let scenario = Scenario::builder("probe")
            .derived_seed(1)
            .tracer(tracer)
            .task(move |_| {
                inner.instant("probe.mark", "test", Clock::SimPs, 42, Vec::new());
            })
            .build();
        let outcomes = Runner::new(1).run(vec![scenario]);
        let trace = outcomes[0].trace.as_ref().expect("trace captured");
        telemetry::trace::check_nesting(trace).unwrap();
        assert_eq!(trace[0].name, "task.probe");
        assert!(trace[0]
            .args
            .iter()
            .any(|(k, v)| k == "status" && v == "completed"));
        assert_eq!(trace[1].name, "probe.mark");
        assert_eq!(trace[1].parent, Some(trace[0].id), "task span is the root");
        // Untraced scenarios carry no trace.
        let plain = Runner::new(1).run(sweep(1));
        assert!(plain[0].trace.is_none());
    }

    #[test]
    fn panicking_task_still_yields_a_closed_trace() {
        let tracer = Tracer::new();
        let inner = tracer.clone();
        let scenario = Scenario::builder("boom")
            .tracer(tracer)
            .task(move |_| {
                let _open = inner.begin("never_closed", "test", Clock::SimPs, 7);
                panic!("die mid-span");
            })
            .build();
        let outcomes = Runner::new(1).run(vec![scenario]);
        assert!(outcomes[0].is_failed());
        let trace = outcomes[0].trace.as_ref().unwrap();
        telemetry::trace::check_nesting(trace).unwrap();
        assert!(trace[0]
            .args
            .iter()
            .any(|(k, v)| k == "status" && v == "failed"));
    }
}
