//! Counter-based RNG stream derivation.
//!
//! Every task's seed is a pure function of `(root_seed, target_id,
//! iteration)` — never of thread identity or execution order — so a
//! sweep's output is byte-identical for any worker count, including
//! one. The mixing is hand-rolled (FNV-1a over the target name, a
//! SplitMix64-style finalizer over the words) rather than delegated to
//! [`std::hash::DefaultHasher`], whose output is allowed to change
//! between Rust releases; these constants are part of the repo's
//! reproducibility contract and must never change.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The SplitMix64 increment (golden-ratio constant), used to decorrelate
/// consecutive iteration counters before finalizing.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// FNV-1a over `bytes`: a stable, platform-independent string hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The SplitMix64 output finalizer: a high-quality 64-bit bijection, so
/// structurally similar inputs (consecutive iterations, similar roots)
/// yield statistically independent seeds.
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed for iteration `iteration` of target `target`, derived from
/// the sweep's `root` seed. Pure and stable: the same triple always
/// produces the same seed, on every platform and Rust version.
pub fn task_seed(root: u64, target: &str, iteration: u64) -> u64 {
    finalize(
        root.wrapping_add(fnv1a(target.as_bytes()).rotate_left(17))
            .wrapping_add(iteration.wrapping_mul(GOLDEN))
            .wrapping_add(GOLDEN),
    )
}

/// The seed for target `target` itself (iteration 0's stream parent).
pub fn target_seed(root: u64, target: &str) -> u64 {
    task_seed(root, target, 0)
}

/// A per-iteration stream seed when there is no named target — inner
/// Monte Carlo trials inside an already-seeded task.
pub fn iteration_seed(root: u64, iteration: u64) -> u64 {
    finalize(
        root.wrapping_add(iteration.wrapping_mul(GOLDEN))
            .wrapping_add(GOLDEN),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The derivation constants are a compatibility contract: pin a few
    /// concrete values so an accidental change fails loudly.
    #[test]
    fn derivation_is_pinned() {
        assert_eq!(task_seed(0, "", 0), task_seed(0, "", 0));
        let a = task_seed(0xD1A2, "fig11", 0);
        let b = task_seed(0xD1A2, "fig11", 1);
        let c = task_seed(0xD1A2, "fig12", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, task_seed(0xD1A2, "fig11", 0), "pure function");
        assert_eq!(target_seed(7, "x"), task_seed(7, "x", 0));
    }

    #[test]
    fn iteration_seeds_are_spread() {
        // Consecutive counters must not yield clustered seeds: check
        // that low bits look balanced over a small window.
        let ones: u32 = (0..64u64).map(|i| (iteration_seed(42, i) & 1) as u32).sum();
        assert!((20..=44).contains(&ones), "low-bit balance: {ones}/64");
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(iteration_seed(1, i)), "collision at {i}");
        }
    }

    #[test]
    fn distinct_targets_decorrelate() {
        let mut seen = std::collections::HashSet::new();
        for t in ["table1", "fig1", "fig2", "fig11", "fig17", "extras"] {
            for i in 0..100 {
                assert!(seen.insert(task_seed(0xD1A2, t, i)), "{t}/{i} collided");
            }
        }
    }
}
