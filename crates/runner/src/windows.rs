//! Coarse-grained time-parallel window execution with deterministic
//! reconciliation.
//!
//! A simulation run splits into a chain of windows `W0..Wn`; window
//! `i+1` depends on the exact simulator state window `i` leaves
//! behind, so the chain is inherently sequential. What *can* run in
//! parallel is speculation: while the committed frontier executes
//! window `i`, spare workers execute windows `i+1..` from *predicted*
//! entry states. When the frontier catches up, a speculative result is
//! adopted only if its predicted entry state's digest equals the
//! digest of the state the committed chain actually produced;
//! otherwise the speculative work is discarded and the window is
//! re-simulated from the true state.
//!
//! Because adoption is gated on entry-state equality, every committed
//! `(state, result)` pair is a pure function of the initial state and
//! the window inputs — never of worker count, scheduling, or predictor
//! quality. A wrong predictor costs wasted work, not wrong answers;
//! zero spare permits degenerate to the serial chain. That is the same
//! common-case-versus-contract discipline the memsim differential
//! suite applies to the controller: the fast path may be clever, the
//! observable behaviour must be boring.
//!
//! The window inputs themselves must not depend on who executes them:
//! callers that need per-window randomness should derive it with
//! [`crate::seed::iteration_seed`]`(run_seed, window_index)` so the
//! stream is a pure function of the window's position in the chain.

use crate::pool::Permits;

/// Upper bound on in-flight speculative windows per round, independent
/// of how many permits the pool could lend: each one holds a full
/// cloned state, so lookahead trades memory for latency.
const MAX_LOOKAHEAD: usize = 8;

/// Outcome accounting for one [`speculative_chain`] run. Diagnostics
/// only — the committed results never depend on these numbers.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ChainStats {
    /// Windows executed and committed (always the full chain length).
    pub committed: usize,
    /// Speculative window executions launched on spare workers.
    pub speculated: usize,
    /// Speculative executions whose predicted entry state matched the
    /// committed chain and whose results were adopted as-is.
    pub adopted: usize,
    /// Speculative executions discarded on a digest mismatch or a
    /// panicked speculative worker (the window was then re-simulated
    /// from the true state by a later round).
    pub replayed: usize,
}

/// Runs the window chain serially: the degenerate (and, on a
/// single-CPU host, optimal) schedule. `exec` consumes the entry state
/// of window `i` and returns its exit state plus the window's result.
///
/// This is the reference semantics [`speculative_chain`] must match
/// bit-for-bit; it needs neither `Clone` nor a digest, so state types
/// holding non-clonable resources can still be windowed.
pub fn window_chain<S, R>(
    initial: S,
    windows: usize,
    mut exec: impl FnMut(S, usize) -> (S, R),
) -> (S, Vec<R>) {
    let mut state = initial;
    let mut results = Vec::with_capacity(windows);
    for i in 0..windows {
        let (next, r) = exec(state, i);
        state = next;
        results.push(r);
    }
    (state, results)
}

/// Runs the window chain with speculative lookahead on whatever spare
/// worker permits the process-wide pool can lend, reconciling each
/// speculative window against the committed frontier by entry-state
/// digest. Committed results are byte-identical to [`window_chain`]
/// for any permit count and any predictor.
///
/// `predict(&frontier_state, frontier, target)` guesses the *entry*
/// state of window `target` given the entry state of window `frontier`
/// (the window the committed chain is about to execute). `digest`
/// fingerprints a state and must cover everything `exec`'s behaviour
/// can depend on: two states with equal digests are treated as
/// interchangeable, so use a collision-resistant hash over the full
/// state.
///
/// A panic on the exact (committed) path propagates; a panic inside a
/// *speculative* execution is treated as a misprediction — discarded
/// and re-simulated from the true state — because a predicted entry
/// state carries no validity guarantee.
pub fn speculative_chain<S, R>(
    initial: S,
    windows: usize,
    exec: impl Fn(S, usize) -> (S, R) + Sync,
    predict: impl Fn(&S, usize, usize) -> S + Sync,
    digest: impl Fn(&S) -> u64 + Sync,
) -> (S, Vec<R>, ChainStats)
where
    S: Send,
    R: Send,
{
    let mut stats = ChainStats::default();
    let mut state = initial;
    let mut results: Vec<R> = Vec::with_capacity(windows);
    let mut i = 0usize;
    while i < windows {
        let permits = Permits::take((windows - 1 - i).min(MAX_LOOKAHEAD));
        let lookahead = permits.0;
        if lookahead == 0 {
            // No spare workers: take the serial step.
            let (next, r) = exec(state, i);
            state = next;
            results.push(r);
            stats.committed += 1;
            i += 1;
            continue;
        }
        // Predict entry states for windows i+1..=i+lookahead off the
        // committed frontier, then run window i exactly on this thread
        // while spare workers execute the speculative windows.
        let predictions: Vec<S> = (1..=lookahead).map(|j| predict(&state, i, i + j)).collect();
        let entry_digests: Vec<u64> = predictions.iter().map(&digest).collect();
        stats.speculated += lookahead;
        let mut speculative: Vec<Option<(S, R)>> = Vec::new();
        let mut exact: Option<(S, R)> = None;
        std::thread::scope(|scope| {
            let exec = &exec;
            let handles: Vec<_> = predictions
                .into_iter()
                .enumerate()
                .map(|(k, p)| scope.spawn(move || exec(p, i + 1 + k)))
                .collect();
            exact = Some(exec(state, i));
            speculative = handles.into_iter().map(|h| h.join().ok()).collect();
        });
        drop(permits);
        let (next, r) = exact.expect("exact window executed");
        state = next;
        results.push(r);
        stats.committed += 1;
        i += 1;
        // Reconcile in chain order: adopt while each prediction's
        // entry digest matches the state the chain actually reached.
        // The first mismatch invalidates every later speculation too
        // (they were predicted off the same wrong guess trajectory);
        // those windows re-run exactly in later rounds.
        let mut k = 0usize;
        for spec in speculative {
            match spec {
                Some((exit, r)) if entry_digests[k] == digest(&state) => {
                    state = exit;
                    results.push(r);
                    stats.adopted += 1;
                    stats.committed += 1;
                    i += 1;
                    k += 1;
                }
                _ => break,
            }
        }
        stats.replayed += lookahead - k;
    }
    (state, results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic window semantics: the state is a u64, window `i`
    /// mixes its index in with a splitmix-style bijection, and the
    /// result exposes the entry state so adoption bugs are visible.
    fn mix(state: u64, i: usize) -> u64 {
        let mut z = state
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn exec(state: u64, i: usize) -> (u64, u64) {
        (mix(state, i), state)
    }

    /// The exact predictor: replay the recurrence from the frontier to
    /// the target window (possible here because the synthetic exec is
    /// cheap and pure; a simulator would use an approximate model).
    fn exact_predict(frontier: &u64, from: usize, to: usize) -> u64 {
        let mut s = *frontier;
        for w in from..to {
            s = mix(s, w);
        }
        s
    }

    #[test]
    fn serial_chain_matches_hand_unroll() {
        let (end, results) = window_chain(7u64, 4, exec);
        let mut s = 7u64;
        let mut want = Vec::new();
        for i in 0..4 {
            want.push(s);
            s = mix(s, i);
        }
        assert_eq!(results, want);
        assert_eq!(end, s);
    }

    /// Whatever the predictor does — exact, stale, or garbage — the
    /// committed chain must equal the serial chain, at any permit
    /// availability.
    #[test]
    fn speculation_never_changes_results() {
        let serial = window_chain(99u64, 23, exec);
        for (name, predict) in [
            ("exact", exact_predict as fn(&u64, usize, usize) -> u64),
            ("stale", |s: &u64, _f: usize, _t: usize| *s),
            ("garbage", |_: &u64, _f: usize, t: usize| {
                t as u64 ^ 0xDEAD_BEEF
            }),
        ] {
            let (end, results, stats) = speculative_chain(99u64, 23, exec, predict, |s| *s);
            assert_eq!((end, &results), (serial.0, &serial.1), "{name}");
            assert_eq!(stats.committed, 23, "{name}");
            assert_eq!(stats.adopted + stats.replayed, stats.speculated, "{name}");
        }
    }

    /// Panicking speculation is a misprediction, not a failure: the
    /// chain must still produce the serial result.
    #[test]
    fn speculative_panic_is_discarded() {
        let serial = window_chain(5u64, 9, |s, i| {
            let (next, r) = exec(s, i);
            (next & !(1 << 63), r)
        });
        let (end, results, stats) = speculative_chain(
            5u64,
            9,
            |s, i| {
                // The predictor below poisons every guess with the high
                // bit; exec masks it out of real exit states, so the
                // assert fires on speculative executions only.
                assert!(s & (1 << 63) == 0, "poisoned speculative state");
                let (next, r) = exec(s, i);
                (next & !(1 << 63), r)
            },
            |_: &u64, _f, t| (1u64 << 63) | t as u64,
            |s| *s,
        );
        assert_eq!(results, serial.1);
        assert_eq!(end, serial.0);
        // Every speculation panicked, so none can have been adopted.
        assert_eq!(stats.adopted, 0);
        assert_eq!(stats.replayed, stats.speculated);
    }

    /// The exact predictor adopts every speculation; the adoption
    /// assert is gated on speculation actually happening since the
    /// process-wide permit pool is shared with every other test (a
    /// concurrent test may hold all spare permits).
    #[test]
    fn exact_predictor_adopts_everything() {
        let (_, _, stats) = speculative_chain(3u64, 40, exec, exact_predict, |s| *s);
        if stats.speculated > 0 {
            assert_eq!(stats.adopted, stats.speculated);
            assert_eq!(stats.replayed, 0);
        }
        assert_eq!(stats.committed, 40);
    }

    /// A garbage predictor wastes every speculation.
    #[test]
    fn garbage_predictor_replays_everything() {
        let (_, _, stats) =
            speculative_chain(3u64, 40, exec, |_: &u64, _f, t| 0xBAD0 + t as u64, |s| *s);
        assert_eq!(stats.adopted, 0);
        assert_eq!(stats.replayed, stats.speculated);
        assert_eq!(stats.committed, 40);
    }
}
