//! A fixed-size scoped-thread worker pool with order-preserving
//! results.
//!
//! The pool has no long-lived threads: each [`parallel_map`] call
//! spawns scoped workers, bounded by a process-wide permit pool so
//! nested parallelism (scenarios running parallel Monte Carlo loops
//! inside a parallel sweep) cannot oversubscribe the machine. The
//! calling thread always participates, so work completes even when no
//! permits are available.
//!
//! Determinism: work items are claimed by index from an atomic counter
//! and results are written into positional slots, so the output order
//! equals the input order for any worker count. Reductions offered
//! here ([`parallel_count`], [`parallel_tally`]) are integer sums,
//! which are associative and commutative — their results are
//! bit-identical regardless of how items land on workers.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

/// Configured job count; 0 means "auto" (available parallelism).
static CONFIGURED_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Extra worker permits beyond the calling threads. `isize::MIN` until
/// first use ([`permit_pool`] initializes it from [`jobs`]).
static PERMITS: AtomicIsize = AtomicIsize::new(isize::MIN);
static PERMITS_INIT: Once = Once::new();

/// Sets the process-wide worker budget. `0` restores the default
/// (available parallelism). Call once at startup, before parallel
/// work begins; the budget applies to every pool user in the process.
pub fn set_jobs(n: usize) {
    CONFIGURED_JOBS.store(n, Ordering::SeqCst);
    permit_pool(); // force initialization, then overwrite
    PERMITS.store(jobs() as isize - 1, Ordering::SeqCst);
}

/// The resolved worker budget: the configured value, or the machine's
/// available parallelism when unset.
pub fn jobs() -> usize {
    match CONFIGURED_JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

fn permit_pool() -> &'static AtomicIsize {
    PERMITS_INIT.call_once(|| {
        PERMITS.store(jobs() as isize - 1, Ordering::SeqCst);
    });
    &PERMITS
}

/// RAII over borrowed permits so panics release them too.
pub(crate) struct Permits(pub(crate) usize);

impl Permits {
    pub(crate) fn take(want: usize) -> Permits {
        let pool = permit_pool();
        let mut got = 0usize;
        while got < want {
            let cur = pool.load(Ordering::SeqCst);
            if cur <= 0 {
                break;
            }
            let take = cur.min((want - got) as isize);
            if pool
                .compare_exchange(cur, cur - take, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                got += take as usize;
            }
        }
        Permits(got)
    }
}

impl Drop for Permits {
    fn drop(&mut self) {
        if self.0 > 0 {
            permit_pool().fetch_add(self.0 as isize, Ordering::SeqCst);
        }
    }
}

/// Applies `f` to every item, in parallel, returning results in input
/// order. `f` receives `(index, item)` so callers can derive
/// counter-based seeds from the position rather than the worker.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (after joining every
/// worker). Use [`crate::Runner`] for per-task panic isolation.
pub fn parallel_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let permits = Permits::take(n.saturating_sub(1).min(jobs().saturating_sub(1)));
    if permits.0 == 0 {
        // Serial fast path: no threads, no slot overhead.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, it)| f(i, it))
            .collect();
    }

    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let worker = || loop {
        let i = next.fetch_add(1, Ordering::SeqCst);
        if i >= n {
            break;
        }
        let item = slots[i].lock().unwrap().take().expect("item claimed once");
        let out = f(i, item);
        *results[i].lock().unwrap() = Some(out);
    };
    std::thread::scope(|s| {
        for _ in 0..permits.0 {
            s.spawn(worker);
        }
        worker();
    });
    drop(permits);
    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

/// The number of chunks to split `n` items into for a reduction: a few
/// per worker so stragglers balance, never more than the items.
fn chunk_count(n: usize) -> usize {
    (jobs() * 4).clamp(1, n.max(1))
}

/// Counts `i in 0..n` for which `pred(i)` holds, in parallel. The
/// result is exactly the serial count for any worker budget.
pub fn parallel_count<F>(n: usize, pred: F) -> u64
where
    F: Fn(usize) -> bool + Sync,
{
    parallel_tally::<2, _>(n, |i| usize::from(pred(i)))[1]
}

/// Classifies `i in 0..n` into `K` buckets via `class` and returns the
/// per-bucket totals. Integer sums over fixed per-index work make the
/// result independent of chunking and worker count.
///
/// # Panics
///
/// Panics when `class` returns an index `>= K`.
pub fn parallel_tally<const K: usize, F>(n: usize, class: F) -> [u64; K]
where
    F: Fn(usize) -> usize + Sync,
{
    let chunks = chunk_count(n);
    let size = n.div_ceil(chunks.max(1)).max(1);
    let ranges: Vec<(usize, usize)> = (0..chunks)
        .map(|c| (c * size, ((c + 1) * size).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    let partials = parallel_map(ranges, |_, (lo, hi)| {
        let mut counts = [0u64; K];
        for i in lo..hi {
            counts[class(i)] += 1;
        }
        counts
    });
    let mut total = [0u64; K];
    for part in partials {
        for (t, p) in total.iter_mut().zip(part) {
            *t += p;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(items.clone(), |i, v| {
            assert_eq!(i as u64, v);
            v * 3
        });
        assert_eq!(out, items.iter().map(|v| v * 3).collect::<Vec<_>>());
        assert!(parallel_map(Vec::<u8>::new(), |_, v| v).is_empty());
    }

    #[test]
    fn tally_matches_serial_for_any_budget() {
        let class = |i: usize| i % 3;
        let mut serial = [0u64; 3];
        for i in 0..10_001 {
            serial[class(i)] += 1;
        }
        assert_eq!(parallel_tally::<3, _>(10_001, class), serial);
    }

    #[test]
    fn count_matches_serial() {
        assert_eq!(parallel_count(10_000, |i| i % 7 == 0), 1429);
        assert_eq!(parallel_count(0, |_| true), 0);
    }

    #[test]
    fn nested_maps_complete() {
        // Inner maps run while the outer map holds most permits; the
        // caller-participates rule keeps everything moving.
        let out = parallel_map((0..8u64).collect(), |_, v| {
            parallel_tally::<2, _>(100, |i| usize::from(i as u64 % 2 == v % 2))[1]
        });
        assert_eq!(out, vec![50; 8]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        // Force the threaded path with more items than workers.
        let _ = parallel_map((0..64).collect::<Vec<i32>>(), |_, v| {
            if v == 13 {
                panic!("boom");
            }
            v
        });
    }
}
