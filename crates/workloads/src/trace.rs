//! The synthetic access-stream generator.

use crate::suite::SuiteParams;
use memsim::trace::MemOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many operations apart (on average) MPI stalls are injected.
const MPI_PERIOD_OPS: f64 = 2_000.0;

/// A deterministic, bounded memory-access stream for one core,
/// realizing a [`SuiteParams`] model.
///
/// Implements `Iterator<Item = MemOp>`, so it plugs directly into
/// [`memsim::NodeSim::run`] via the blanket
/// [`memsim::AccessStream`] impl.
///
/// ```
/// use workloads::{Suite, TraceGen};
///
/// let ops: Vec<_> = TraceGen::new(Suite::Hpcg.params(), 7, 100).collect();
/// assert_eq!(ops.len(), 100);
/// // Deterministic for a seed:
/// let again: Vec<_> = TraceGen::new(Suite::Hpcg.params(), 7, 100).collect();
/// assert_eq!(ops, again);
/// ```
/// Stream cursors per core. One dominant stream keeps DRAM row
/// locality realistic — hardware reassembles per-array locality via
/// FR-FCFS even when software interleaves operand arrays.
const STREAMS_PER_CORE: usize = 1;

#[derive(Debug)]
pub struct TraceGen {
    params: SuiteParams,
    rng: StdRng,
    remaining: usize,
    /// Concurrent stream cursors (operand arrays), round-robined.
    cursors: [u64; STREAMS_PER_CORE],
    next_stream: usize,
    /// Byte offset of this core's partition (so cores touch disjoint
    /// data, as MPI ranks do).
    base: u64,
}

impl TraceGen {
    /// Creates a stream of `ops` operations with the given `seed`.
    /// Streams with different seeds model different MPI ranks: same
    /// statistics, disjoint address partitions.
    pub fn new(params: SuiteParams, seed: u64, ops: usize) -> TraceGen {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cursors = [0u64; STREAMS_PER_CORE];
        for c in cursors.iter_mut() {
            *c = rng.random_range(0..params.footprint_blocks);
        }
        TraceGen {
            params,
            rng,
            remaining: ops,
            cursors,
            next_stream: 0,
            base: (seed % 64) * (params.footprint_blocks * 64 * 2),
        }
    }

    /// Remaining operations.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The `(block, dirty)` pairs a warmed cache would hold when this
    /// stream begins: the `count` footprint blocks *behind* the
    /// stream's starting cursor (its recent past), dirtied with
    /// probability `dirty_fraction`. Feed to
    /// `memsim::NodeSim::prewarm_core` so the run starts in steady
    /// state. A conventional system's steady-state LLC is dirty at
    /// roughly the store fraction ([`SuiteParams::write_fraction`]);
    /// a system with proactive LLC cleaning keeps it nearly clean.
    pub fn warmup_blocks(&self, count: usize, dirty_fraction: f64) -> Vec<(u64, bool)> {
        let p = self.params;
        let base_block = self.base / 64;
        let mut rng = StdRng::seed_from_u64(self.base ^ 0x9E37_79B9);
        let per_stream = count / STREAMS_PER_CORE;
        let mut out = Vec::with_capacity(count + p.warm_blocks as usize);
        for cursor in self.cursors {
            for i in 0..per_stream as u64 {
                let offset =
                    (cursor + p.footprint_blocks - 1 - i % p.footprint_blocks) % p.footprint_blocks;
                let block = base_block + p.hot_blocks + offset;
                out.push((block, rng.random_bool(dirty_fraction.clamp(0.0, 1.0))));
            }
        }
        // The warm reuse region (when the suite uses one) goes in last
        // (most recently used) so a cache large enough to hold it
        // starts with it resident.
        if p.warm_fraction > 0.0 {
            for i in 0..p.warm_blocks {
                out.push((base_block + p.hot_blocks + p.footprint_blocks + i, false));
            }
        }
        out
    }

    fn sample_gap(&mut self) -> u32 {
        let p = &self.params;
        // Exponentially distributed compute gap.
        let u: f64 = 1.0 - self.rng.random::<f64>();
        let mut gap = round_half_away(-p.mean_gap * u.ln()) as u32;
        // Occasional MPI stall: a long, memory-speed-insensitive pause.
        if self.rng.random_bool(1.0 / MPI_PERIOD_OPS) {
            let f = p.mpi_stall_fraction.min(0.45);
            let mpi_instrs = (f / (1.0 - f) * MPI_PERIOD_OPS * (p.mean_gap + 4.0)).round() as u32;
            gap = gap.saturating_add(mpi_instrs);
        }
        gap
    }

    fn next_block(&mut self) -> u64 {
        let p = self.params;
        if self.rng.random_bool(p.hot_fraction) {
            // Hot region: cache-resident data (stack, tables, frontier).
            return self.rng.random_range(0..p.hot_blocks);
        }
        if self.rng.random_bool(p.warm_fraction) {
            // Warm region: a mid-size reused tile that fits the larger
            // hierarchy's cache but not the smaller one's. Placed past
            // the footprint so the streaming cursor never evicts it
            // wholesale.
            return p.hot_blocks + p.footprint_blocks + self.rng.random_range(0..p.warm_blocks);
        }
        // Round-robin the operand streams (a triad touches several
        // arrays per iteration).
        let s = self.next_stream;
        self.next_stream += 1;
        if self.next_stream >= STREAMS_PER_CORE {
            self.next_stream = 0;
        }
        if self.rng.random_bool(p.streaming) {
            // Continue this stream.
            self.cursors[s] = (self.cursors[s] + p.stride_blocks) % p.footprint_blocks;
        } else {
            // Jump somewhere new and stream from there.
            self.cursors[s] = self.rng.random_range(0..p.footprint_blocks);
        }
        p.hot_blocks + self.cursors[s]
    }
}

/// Exactly `g.round()` for the non-negative values the gap sampler
/// produces, but built from a truncation (one instruction) instead of
/// a libm call: `g.trunc()` is exact, `g - g.trunc()` is exact (both
/// are multiples of `ulp(g)` and less than one apart), so the
/// half-away-from-zero decision is bit-identical to `round`'s.
#[inline]
fn round_half_away(g: f64) -> f64 {
    let t = g.trunc();
    t + ((g - t) >= 0.5) as u32 as f64
}

impl Iterator for TraceGen {
    type Item = MemOp;

    fn next(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let gap = self.sample_gap();
        let block = self.next_block();
        let addr = self.base + block * 64;
        let is_write = self.rng.random_bool(self.params.write_fraction);
        Some(if is_write {
            MemOp::store(addr, gap)
        } else {
            MemOp::load(addr, gap)
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TraceGen {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Suite;

    #[test]
    fn round_half_away_matches_round() {
        // The fast path must be bit-identical to `f64::round` on the
        // sampler's domain (non-negative), including exact halves and
        // values produced by the actual gap expression.
        for i in 0..200_000u64 {
            let g = i as f64 * 0.437 + (i % 7) as f64 * 0.5;
            assert_eq!(round_half_away(g), g.round(), "g={g}");
        }
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200_000 {
            let u: f64 = 1.0 - rng.random::<f64>();
            let g = -137.0 * u.ln();
            assert_eq!(round_half_away(g), g.round(), "g={g}");
        }
        for g in [0.0, 0.5, 0.49999999999999994, 1.5, 2.5, 4503599627370495.5] {
            assert_eq!(round_half_away(g), g.round(), "g={g}");
        }
    }

    #[test]
    fn produces_exactly_n_ops() {
        let gen = TraceGen::new(Suite::Linpack.params(), 1, 5_000);
        assert_eq!(gen.len(), 5_000);
        assert_eq!(gen.count(), 5_000);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a: Vec<_> = TraceGen::new(Suite::Npb.params(), 3, 500).collect();
        let b: Vec<_> = TraceGen::new(Suite::Npb.params(), 3, 500).collect();
        let c: Vec<_> = TraceGen::new(Suite::Npb.params(), 4, 500).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn write_fraction_matches_parameter() {
        let p = Suite::Lulesh.params();
        let ops: Vec<_> = TraceGen::new(p, 9, 20_000).collect();
        let writes = ops.iter().filter(|o| o.is_write).count() as f64;
        let frac = writes / ops.len() as f64;
        assert!((frac - p.write_fraction).abs() < 0.02, "write frac {frac}");
    }

    #[test]
    fn mean_gap_matches_parameter() {
        let p = Suite::Hpcg.params();
        let ops: Vec<_> = TraceGen::new(p, 11, 20_000).collect();
        let mean: f64 =
            ops.iter().map(|o| o.gap_instructions as f64).sum::<f64>() / ops.len() as f64;
        // MPI stalls inflate the mean above mean_gap by design.
        assert!(mean > p.mean_gap * 0.8, "mean gap {mean}");
        assert!(mean < p.mean_gap + 10.0, "mean gap {mean}");
    }

    #[test]
    fn streaming_suites_have_sequential_runs() {
        let ops: Vec<_> = TraceGen::new(Suite::Linpack.params(), 5, 10_000).collect();
        let sequential = ops
            .windows(2)
            .filter(|w| w[1].block() == w[0].block() + 1)
            .count() as f64;
        let frac = sequential / ops.len() as f64;
        assert!(frac > 0.4, "linpack sequential fraction {frac}");

        let ops: Vec<_> = TraceGen::new(Suite::Graph500.params(), 5, 10_000).collect();
        let sequential = ops
            .windows(2)
            .filter(|w| w[1].block() == w[0].block() + 1)
            .count() as f64;
        let frac_g = sequential / ops.len() as f64;
        assert!(frac_g < 0.25, "graph500 sequential fraction {frac_g}");
    }

    #[test]
    fn addresses_stay_in_partition() {
        let p = Suite::Coral2.params();
        let span = p.footprint_blocks * 64 * 2;
        for seed in [0u64, 1, 7] {
            let base = (seed % 64) * span;
            for op in TraceGen::new(p, seed, 2_000) {
                assert!(op.addr >= base && op.addr < base + span);
            }
        }
    }

    #[test]
    fn different_ranks_touch_disjoint_memory() {
        let p = Suite::Npb.params();
        let a: std::collections::HashSet<u64> =
            TraceGen::new(p, 0, 2_000).map(|o| o.block()).collect();
        let b: std::collections::HashSet<u64> =
            TraceGen::new(p, 1, 2_000).map(|o| o.block()).collect();
        assert!(a.is_disjoint(&b));
    }
}
