//! Job-level memory-utilization model (Figure 1 of the paper).
//!
//! The paper analyzes three billion memory measurements across three
//! LANL clusters (released as LA-UR-19-28211) and reports, per
//! cluster, the fraction of jobs in which **every** node stays below
//! 25 % / 50 % memory utilization (all-inclusive, OS file cache
//! counted) for the job's entire lifetime. Those fractions weight the
//! Figure 12 usage buckets and drive the system-wide simulation's
//! probabilistic job scaling.

use rand::Rng;

/// One of the LANL clusters in the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cluster {
    /// Grizzly: 1490 nodes, 36 cores / 128 GB per node; the cluster
    /// whose Slurm traces drive the system-wide simulation.
    Grizzly,
    /// Badger.
    Badger,
    /// Snow.
    Snow,
}

impl Cluster {
    /// All clusters in Figure 1.
    pub const ALL: [Cluster; 3] = [Cluster::Grizzly, Cluster::Badger, Cluster::Snow];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Cluster::Grizzly => "Grizzly",
            Cluster::Badger => "Badger",
            Cluster::Snow => "Snow",
        }
    }
}

impl std::fmt::Display for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The job-level memory-utilization distribution of a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationModel {
    /// Fraction of jobs below 25 % utilization throughout.
    pub below_25: f64,
    /// Fraction of jobs below 50 % utilization throughout.
    pub below_50: f64,
}

impl UtilizationModel {
    /// The per-cluster fractions (Figure 1). HPC jobs overwhelmingly
    /// underuse memory: parallelism spreads the problem thin, MPI
    /// input bypasses the page cache, and one job owns all cores of a
    /// node.
    pub fn for_cluster(cluster: Cluster) -> UtilizationModel {
        match cluster {
            Cluster::Grizzly => UtilizationModel {
                below_25: 0.60,
                below_50: 0.75,
            },
            Cluster::Badger => UtilizationModel {
                below_25: 0.55,
                below_50: 0.72,
            },
            Cluster::Snow => UtilizationModel {
                below_25: 0.66,
                below_50: 0.81,
            },
        }
    }

    /// Weights of the paper's three Figure 12 usage buckets:
    /// `[0–25 %)`, `[25–50 %)`, `[50–100 %]`.
    pub fn bucket_weights(&self) -> [f64; 3] {
        [
            self.below_25,
            self.below_50 - self.below_25,
            1.0 - self.below_50,
        ]
    }

    /// Samples a job's lifetime-maximum memory utilization in [0, 1],
    /// consistent with the bucket fractions (uniform within buckets).
    pub fn sample_utilization<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        if u < self.below_25 {
            rng.random::<f64>() * 0.25
        } else if u < self.below_50 {
            0.25 + rng.random::<f64>() * 0.25
        } else {
            0.5 + rng.random::<f64>() * 0.5
        }
    }

    /// Whether a job at `utilization` benefits from Hetero-DMR (needs
    /// half the modules free: < 50 %).
    pub fn hetero_dmr_eligible(utilization: f64) -> bool {
        utilization < 0.5
    }

    /// A Cloud/datacenter utilization model (Section III-F's
    /// generality argument): prior studies put average memory
    /// utilization at 50-60 %, so a substantial minority of machines
    /// still qualify for Hetero-DMR — analogous to CPU turbo-boost
    /// engaging when cores are idle.
    pub fn cloud() -> UtilizationModel {
        UtilizationModel {
            below_25: 0.12,
            below_50: 0.42,
        }
    }

    /// Fraction of machines/jobs that can run Hetero-DMR at all
    /// (< 50 % utilization).
    pub fn eligible_fraction(&self) -> f64 {
        self.below_50
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fractions_are_monotone_probabilities() {
        for c in Cluster::ALL {
            let m = UtilizationModel::for_cluster(c);
            assert!(m.below_25 > 0.0 && m.below_25 < 1.0);
            assert!(m.below_50 > m.below_25 && m.below_50 < 1.0);
        }
    }

    #[test]
    fn bucket_weights_sum_to_one() {
        for c in Cluster::ALL {
            let w = UtilizationModel::for_cluster(c).bucket_weights();
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn sampling_matches_fractions() {
        let m = UtilizationModel::for_cluster(Cluster::Grizzly);
        let mut rng = StdRng::seed_from_u64(12);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample_utilization(&mut rng)).collect();
        let below25 = samples.iter().filter(|&&u| u < 0.25).count() as f64 / n as f64;
        let below50 = samples.iter().filter(|&&u| u < 0.5).count() as f64 / n as f64;
        assert!((below25 - m.below_25).abs() < 0.01, "{below25}");
        assert!((below50 - m.below_50).abs() < 0.01, "{below50}");
        assert!(samples.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn eligibility_threshold() {
        assert!(UtilizationModel::hetero_dmr_eligible(0.0));
        assert!(UtilizationModel::hetero_dmr_eligible(0.49));
        assert!(!UtilizationModel::hetero_dmr_eligible(0.5));
        assert!(!UtilizationModel::hetero_dmr_eligible(0.99));
    }

    #[test]
    fn majority_of_jobs_are_eligible() {
        // The premise of Hetero-DMR: most HPC jobs leave half of
        // memory free.
        for c in Cluster::ALL {
            assert!(UtilizationModel::for_cluster(c).below_50 > 0.5);
        }
    }
}
