//! Streaming, counter-seeded synthetic job generation.
//!
//! The Grizzly-style trace generator in `scheduler::trace` materializes
//! the whole trace in memory and sizes the arrival window from a first
//! pass over every job — fine for the paper's 58 K jobs, fatal for the
//! fleet-scale runs the ROADMAP asks for (10 M+ jobs across a
//! federation). This module generates jobs on the fly instead:
//!
//! * **Counter-seeded**: every job's random draws come from its own
//!   `StdRng` seeded with `iteration_seed(stream_seed, index)`, so job
//!   *k* is identical no matter how many jobs were drawn before it, how
//!   many worker threads exist, or how often the stream is restarted.
//! * **Single pass**: instead of summing the whole trace's node-seconds
//!   to size the arrival window, the expected node-seconds per job is
//!   estimated once from a fixed counter-seeded calibration sample
//!   ([`CALIBRATION_JOBS`] draws on an independent seed lane), and the
//!   Poisson arrival gap is derived from that expectation. Submit times
//!   are then a running prefix sum inside the iterator.
//! * **O(1) memory**: the stream holds a cursor and a clock, nothing
//!   else; 10 M jobs cost the same RSS as 10.

use crate::utilization::UtilizationModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use runner::seed::{iteration_seed, task_seed};

/// Draws (on an independent seed lane) used to estimate the expected
/// job *duration* when sizing the arrival process. Widths are not
/// sampled — their expectation has a closed form — so the estimate
/// avoids the node-count tail, which otherwise dominates the variance
/// of a node-seconds sample mean. Large enough that the offered load
/// lands within a few percent of the target, small enough that
/// calibration is free next to any real run.
pub const CALIBRATION_JOBS: u64 = 8_192;

/// One generated job, before any scheduler-specific typing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Stream-order index (also the counter the job was seeded with).
    pub index: u64,
    /// Submission time, seconds from stream start (nondecreasing).
    pub submit_s: f64,
    /// Nodes requested.
    pub nodes: u32,
    /// Baseline execution time, seconds.
    pub duration_s: f64,
    /// Lifetime-maximum memory utilization in [0, 1].
    pub mem_utilization: f64,
}

impl JobSpec {
    /// Baseline node-seconds this job consumes.
    pub fn node_seconds(&self) -> f64 {
        self.nodes as f64 * self.duration_s
    }
}

/// Configuration of a synthetic job stream: how many jobs, how wide
/// they may be, and what offered load they should present to a given
/// aggregate capacity.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticJobs {
    /// Number of jobs the stream yields.
    pub jobs: u64,
    /// Cap on a single job's width (keep at or below the smallest
    /// cluster that must be able to host any job).
    pub max_nodes: u32,
    /// Aggregate node capacity the stream feeds (a single cluster or a
    /// whole federation).
    pub capacity_nodes: f64,
    /// Target offered utilization of that capacity (the paper reports
    /// ~78 % for Grizzly).
    pub target_utilization: f64,
    /// Per-job memory-utilization model (drives Hetero-DMR
    /// eligibility).
    pub utilization: UtilizationModel,
}

impl SyntheticJobs {
    /// Expected node-seconds per job: the exact width expectation
    /// times a duration mean estimated from a fixed counter-seeded
    /// calibration sample (widths and durations are independent
    /// draws). Deterministic in `seed`.
    pub fn mean_job_node_seconds(&self, seed: u64) -> f64 {
        let mut total = 0.0;
        for k in 0..CALIBRATION_JOBS {
            let mut rng = StdRng::seed_from_u64(task_seed(seed, "jobs.calibration", k));
            total += sample_duration(&mut rng);
        }
        expected_nodes(self.max_nodes) * (total / CALIBRATION_JOBS as f64)
    }

    /// Mean Poisson arrival gap that presents `target_utilization`
    /// offered load to `capacity_nodes`.
    pub fn mean_arrival_gap_s(&self, seed: u64) -> f64 {
        self.mean_job_node_seconds(seed) / (self.capacity_nodes * self.target_utilization)
    }

    /// Opens the stream. Restarting with the same seed replays the
    /// exact same jobs.
    pub fn stream(&self, seed: u64) -> JobStream {
        JobStream {
            cfg: *self,
            seed,
            next: 0,
            clock_s: 0.0,
            mean_gap_s: self.mean_arrival_gap_s(seed),
        }
    }
}

/// A lazy, counter-seeded job stream (see module docs). Holds only a
/// cursor and the arrival clock — memory is O(1) in the job count.
#[derive(Debug, Clone)]
pub struct JobStream {
    cfg: SyntheticJobs,
    seed: u64,
    next: u64,
    clock_s: f64,
    mean_gap_s: f64,
}

impl JobStream {
    /// Jobs remaining in the stream.
    pub fn remaining(&self) -> u64 {
        self.cfg.jobs - self.next
    }
}

impl Iterator for JobStream {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if self.next >= self.cfg.jobs {
            return None;
        }
        let index = self.next;
        self.next += 1;
        let mut rng = StdRng::seed_from_u64(iteration_seed(self.seed, index));
        // Exponential inter-arrival gap (Poisson process); the prefix
        // sum keeps submit times nondecreasing by construction.
        let u: f64 = 1.0 - rng.random::<f64>();
        self.clock_s += -self.mean_gap_s * u.ln();
        Some(JobSpec {
            index,
            submit_s: self.clock_s,
            nodes: sample_nodes(&mut rng, self.cfg.max_nodes),
            duration_s: sample_duration(&mut rng),
            mem_utilization: self.cfg.utilization.sample_utilization(&mut rng),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for JobStream {}

/// Heavy-tailed node-count mix: mostly small jobs, a few very wide
/// ones — the classic capacity-cluster shape (same shape as the
/// materialized Grizzly generator).
fn sample_nodes<R: Rng + ?Sized>(rng: &mut R, max_nodes: u32) -> u32 {
    let bucket: f64 = rng.random();
    let nodes = if bucket < 0.35 {
        1
    } else if bucket < 0.60 {
        rng.random_range(2..=4)
    } else if bucket < 0.80 {
        rng.random_range(5..=16)
    } else if bucket < 0.93 {
        rng.random_range(17..=64)
    } else if bucket < 0.99 {
        rng.random_range(65..=256)
    } else {
        rng.random_range(257..=512)
    };
    nodes.min(max_nodes)
}

/// Closed-form expectation of [`sample_nodes`]: bucket probabilities
/// times the mean of each (possibly `max_nodes`-clipped) uniform
/// range. Exact, so arrival sizing never pays for the width tail's
/// sampling variance.
fn expected_nodes(max_nodes: u32) -> f64 {
    let m = max_nodes as f64;
    let clipped_uniform = |a: u32, b: u32| -> f64 {
        let (a, b) = (a as f64, b as f64);
        if m >= b {
            (a + b) / 2.0
        } else if m <= a {
            m
        } else {
            // E[min(U{a..=b}, m)]: values a..=m keep themselves, the
            // rest collapse to m.
            let below = (m * (m + 1.0) - (a - 1.0) * a) / 2.0;
            (below + (b - m) * m) / (b - a + 1.0)
        }
    };
    0.35 * 1.0f64.min(m)
        + 0.25 * clipped_uniform(2, 4)
        + 0.20 * clipped_uniform(5, 16)
        + 0.13 * clipped_uniform(17, 64)
        + 0.06 * clipped_uniform(65, 256)
        + 0.01 * clipped_uniform(257, 512)
}

/// Lognormal-ish durations: median ~45 minutes, capped at a 48 h
/// wall-time limit.
fn sample_duration<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let z = {
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let secs = (7.9 + 1.4 * z).exp();
    secs.clamp(60.0, 48.0 * 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utilization::Cluster;

    fn cfg(jobs: u64) -> SyntheticJobs {
        SyntheticJobs {
            jobs,
            max_nodes: 512,
            capacity_nodes: 4_096.0,
            target_utilization: 0.75,
            utilization: UtilizationModel::for_cluster(Cluster::Grizzly),
        }
    }

    #[test]
    fn replay_is_identical() {
        let a: Vec<JobSpec> = cfg(500).stream(9).collect();
        let b: Vec<JobSpec> = cfg(500).stream(9).collect();
        assert_eq!(a, b);
        let c: Vec<JobSpec> = cfg(500).stream(10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn per_job_draws_are_prefix_independent() {
        // Job k is the same whether or not earlier jobs were consumed
        // (submit times are a prefix sum, so compare the seeded
        // fields, not the clock).
        let full: Vec<JobSpec> = cfg(100).stream(3).collect();
        let mut shifted = cfg(100).stream(3);
        shifted.nth(49); // consume 0..=49
        let fifty_first = shifted.next().expect("job 50");
        assert_eq!(fifty_first.nodes, full[50].nodes);
        assert_eq!(fifty_first.duration_s, full[50].duration_s);
        assert_eq!(fifty_first.mem_utilization, full[50].mem_utilization);
        assert_eq!(fifty_first.submit_s, full[50].submit_s);
    }

    #[test]
    fn submits_are_nondecreasing_and_bounded() {
        let jobs: Vec<JobSpec> = cfg(2_000).stream(1).collect();
        assert_eq!(jobs.len(), 2_000);
        assert!(jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s));
        for j in &jobs {
            assert!(j.nodes >= 1 && j.nodes <= 512);
            assert!(j.duration_s >= 60.0 && j.duration_s <= 48.0 * 3600.0);
            assert!((0.0..=1.0).contains(&j.mem_utilization));
        }
    }

    #[test]
    fn offered_load_tracks_the_target() {
        let c = cfg(20_000);
        let jobs: Vec<JobSpec> = c.stream(5).collect();
        let span = jobs.last().unwrap().submit_s;
        let node_seconds: f64 = jobs.iter().map(JobSpec::node_seconds).sum();
        let offered = node_seconds / (c.capacity_nodes * span);
        assert!(
            (offered - 0.75).abs() < 0.08,
            "offered utilization {offered}"
        );
    }

    #[test]
    fn size_hint_is_exact() {
        let mut s = cfg(10).stream(0);
        assert_eq!(s.len(), 10);
        s.next();
        assert_eq!(s.len(), 9);
        assert_eq!(s.by_ref().count(), 9);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn calibration_is_deterministic_and_plausible() {
        let c = cfg(10);
        let a = c.mean_job_node_seconds(7);
        assert_eq!(a, c.mean_job_node_seconds(7));
        // ~35 mean nodes × ~2-3 h mean duration: loose brackets.
        assert!(a > 1e3 && a < 1e7, "mean node-seconds {a}");
    }
}
