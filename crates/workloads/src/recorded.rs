//! Recorded traces: a compact binary format so real application
//! traces (e.g. from `perf mem`, PIN, or DynamoRIO) can drive the
//! simulator instead of the synthetic suite models.
//!
//! Format: a 12-byte header (`magic "HDMR"`, format version u32,
//! record count u32), then one 13-byte little-endian record per
//! operation: `addr: u64`, `gap_instructions: u32`, `flags: u8`
//! (bit 0 = write).

use memsim::trace::MemOp;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"HDMR";
const VERSION: u32 = 1;

/// Writes `ops` in the recorded-trace format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_trace<W: Write>(mut writer: W, ops: &[MemOp]) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(ops.len() as u32).to_le_bytes())?;
    for op in ops {
        writer.write_all(&op.addr.to_le_bytes())?;
        writer.write_all(&op.gap_instructions.to_le_bytes())?;
        writer.write_all(&[u8::from(op.is_write)])?;
    }
    Ok(())
}

/// Reads a recorded trace back.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic, unsupported version, or a
/// truncated stream, and propagates I/O errors from `reader`.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<Vec<MemOp>> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a recorded HDMR trace (bad magic)",
        ));
    }
    let mut word = [0u8; 4];
    reader.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    reader.read_exact(&mut word)?;
    let count = u32::from_le_bytes(word) as usize;

    let mut ops = Vec::with_capacity(count);
    let mut record = [0u8; 13];
    for _ in 0..count {
        reader.read_exact(&mut record)?;
        let addr = u64::from_le_bytes(record[0..8].try_into().expect("8 bytes"));
        let gap = u32::from_le_bytes(record[8..12].try_into().expect("4 bytes"));
        let flags = record[12];
        if flags > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown flag bits {flags:#04x}"),
            ));
        }
        ops.push(MemOp {
            addr,
            gap_instructions: gap,
            is_write: flags & 1 != 0,
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Suite, TraceGen};

    #[test]
    fn round_trip_preserves_every_op() {
        let ops: Vec<MemOp> = TraceGen::new(Suite::Hpcg.params(), 9, 2_000).collect();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &ops).unwrap();
        // 12-byte header + 13 bytes per record.
        assert_eq!(buffer.len(), 12 + 13 * ops.len());
        let back = read_trace(buffer.as_slice()).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &[]).unwrap();
        assert_eq!(read_trace(buffer.as_slice()).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(MAGIC);
        buffer.extend_from_slice(&99u32.to_le_bytes());
        buffer.extend_from_slice(&0u32.to_le_bytes());
        let err = read_trace(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let ops: Vec<MemOp> = TraceGen::new(Suite::Npb.params(), 1, 10).collect();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &ops).unwrap();
        buffer.truncate(buffer.len() - 5);
        assert!(read_trace(buffer.as_slice()).is_err());
    }

    #[test]
    fn garbage_flags_rejected() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &[MemOp::load(0, 1)]).unwrap();
        *buffer.last_mut().unwrap() = 0xFF;
        assert!(read_trace(buffer.as_slice()).is_err());
    }

    #[test]
    fn recorded_trace_drives_the_simulator() {
        use memsim::config::{ChannelMode, HierarchyConfig};
        use memsim::NodeSim;
        let h = HierarchyConfig::hierarchy1();
        let ops: Vec<MemOp> = TraceGen::new(Suite::Lulesh.params(), 3, 500).collect();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, &ops).unwrap();
        let replayed = read_trace(buffer.as_slice()).unwrap();
        let mut node = NodeSim::new(h, ChannelMode::commercial_baseline());
        let streams: Vec<_> = (0..h.cores).map(|_| replayed.clone().into_iter()).collect();
        let result = node.run(streams);
        assert!(result.exec_time_ps > 0);
    }
}
