//! Epoch-granular workload phase schedules.
//!
//! Long HPC allocations are not one workload: jobs arrive and drain,
//! and a node that ran Linpack all morning may spend the afternoon on
//! Graph500. For an online margin governor this matters because the
//! *error exposure* of an overclocked channel scales with how hard the
//! workload drives memory — a phase change shifts the observed error
//! rate without any change in the silicon. [`PhaseSchedule`] expresses
//! such a rotation as a repeating list of (suite, dwell-epochs) phases
//! aligned to the governor's one-hour epochs.

use crate::suite::Suite;

/// A repeating schedule of workload phases, one suite active per
/// governor epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// `(suite, dwell_epochs)` entries, cycled forever.
    phases: Vec<(Suite, u64)>,
    period: u64,
}

impl PhaseSchedule {
    /// Builds a schedule from `(suite, dwell_epochs)` phases, repeated
    /// cyclically.
    ///
    /// # Panics
    ///
    /// Panics when `phases` is empty or any dwell is zero.
    pub fn new(phases: Vec<(Suite, u64)>) -> PhaseSchedule {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        assert!(
            phases.iter().all(|&(_, dwell)| dwell > 0),
            "phase dwell must be positive"
        );
        let period = phases.iter().map(|&(_, d)| d).sum();
        PhaseSchedule { phases, period }
    }

    /// A single suite forever.
    pub fn steady(suite: Suite) -> PhaseSchedule {
        PhaseSchedule::new(vec![(suite, 1)])
    }

    /// Two suites alternating every `dwell_epochs`.
    pub fn alternating(a: Suite, b: Suite, dwell_epochs: u64) -> PhaseSchedule {
        PhaseSchedule::new(vec![(a, dwell_epochs), (b, dwell_epochs)])
    }

    /// Epochs until the schedule repeats.
    pub fn period_epochs(&self) -> u64 {
        self.period
    }

    /// The suite active at `epoch`.
    pub fn suite_at(&self, epoch: u64) -> Suite {
        let mut offset = epoch % self.period;
        for &(suite, dwell) in &self.phases {
            if offset < dwell {
                return suite;
            }
            offset -= dwell;
        }
        unreachable!("offset < period by construction");
    }

    /// The error-exposure multiplier at `epoch`: the active suite's
    /// memory intensity relative to the most intensive suite in the
    /// schedule, in `(0, 1]`. An overclocked channel only produces
    /// errors on accesses, so a compute-bound phase proportionally
    /// shrinks the observable error rate.
    pub fn relative_intensity_at(&self, epoch: u64) -> f64 {
        let peak = self
            .phases
            .iter()
            .map(|&(s, _)| s.memory_intensity())
            .fold(f64::MIN, f64::max);
        self.suite_at(epoch).memory_intensity() / peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_schedule_never_changes() {
        let s = PhaseSchedule::steady(Suite::Hpcg);
        assert_eq!(s.period_epochs(), 1);
        for e in [0u64, 1, 17, 1_000_003] {
            assert_eq!(s.suite_at(e), Suite::Hpcg);
            assert_eq!(s.relative_intensity_at(e), 1.0);
        }
    }

    #[test]
    fn alternation_cycles_with_the_dwell() {
        let s = PhaseSchedule::alternating(Suite::Hpcg, Suite::Npb, 3);
        assert_eq!(s.period_epochs(), 6);
        assert_eq!(s.suite_at(0), Suite::Hpcg);
        assert_eq!(s.suite_at(2), Suite::Hpcg);
        assert_eq!(s.suite_at(3), Suite::Npb);
        assert_eq!(s.suite_at(5), Suite::Npb);
        assert_eq!(s.suite_at(6), Suite::Hpcg, "wraps after one period");
    }

    #[test]
    fn intensity_is_relative_to_the_peak_phase() {
        // HPCG is memory-bound, NPB compute-heavy: the HPCG phases run
        // at full exposure and NPB phases strictly below it.
        let s = PhaseSchedule::alternating(Suite::Hpcg, Suite::Npb, 1);
        assert!(Suite::Hpcg.memory_intensity() > Suite::Npb.memory_intensity());
        assert_eq!(s.relative_intensity_at(0), 1.0);
        let npb = s.relative_intensity_at(1);
        assert!(npb > 0.0 && npb < 1.0, "npb exposure {npb}");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_rejected() {
        let _ = PhaseSchedule::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dwell_rejected() {
        let _ = PhaseSchedule::new(vec![(Suite::Hpcg, 0)]);
    }
}
