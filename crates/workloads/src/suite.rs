//! The six HPC benchmark suites and their trace parameters.

use std::fmt;

/// One of the paper's six HPC benchmark suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Suite {
    /// Linpack (HPL): blocked dense linear algebra; the de facto
    /// TOP500 ranking benchmark. Highest measured speedup (1.24×)
    /// from memory margins in the paper.
    Linpack,
    /// HPCG: sparse conjugate gradient; bandwidth-hungry streaming
    /// with irregular gather.
    Hpcg,
    /// Graph500: breadth-first search; pointer-chasing, latency-bound.
    Graph500,
    /// CORAL2 (AMG and friends): multigrid/irregular mesh mix.
    Coral2,
    /// LULESH: Lagrangian shock hydrodynamics stencil.
    Lulesh,
    /// NAS Parallel Benchmarks: mixed kernels.
    Npb,
}

impl Suite {
    /// All six suites in the paper's reporting order.
    pub const ALL: [Suite; 6] = [
        Suite::Linpack,
        Suite::Hpcg,
        Suite::Graph500,
        Suite::Coral2,
        Suite::Lulesh,
        Suite::Npb,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Linpack => "Linpack",
            Suite::Hpcg => "HPCG",
            Suite::Graph500 => "Graph500",
            Suite::Coral2 => "CORAL2",
            Suite::Lulesh => "LULESH",
            Suite::Npb => "NPB",
        }
    }

    /// The trace parameters modelling this suite.
    pub fn params(self) -> SuiteParams {
        match self {
            Suite::Linpack => SuiteParams {
                suite: self,
                footprint_blocks: 1 << 18, // 16 MB per core
                mean_gap: 7.0,
                streaming: 0.95,
                stride_blocks: 1,
                write_fraction: 0.24,
                hot_fraction: 0.25,
                hot_blocks: 1 << 9,
                warm_fraction: 0.0,
                warm_blocks: 48 * 1024,
                mpi_stall_fraction: 0.10,
            },
            Suite::Hpcg => SuiteParams {
                suite: self,
                footprint_blocks: 1 << 19, // 32 MB
                mean_gap: 6.0,
                streaming: 0.88,
                stride_blocks: 1,
                write_fraction: 0.16,
                hot_fraction: 0.20,
                hot_blocks: 1 << 9,
                warm_fraction: 0.0,
                warm_blocks: 48 * 1024,
                mpi_stall_fraction: 0.12,
            },
            Suite::Graph500 => SuiteParams {
                suite: self,
                footprint_blocks: 1 << 20, // 64 MB
                mean_gap: 16.0,
                streaming: 0.40,
                stride_blocks: 1,
                write_fraction: 0.10,
                hot_fraction: 0.35,
                hot_blocks: 1 << 10,
                warm_fraction: 0.0,
                warm_blocks: 48 * 1024,
                mpi_stall_fraction: 0.18,
            },
            Suite::Coral2 => SuiteParams {
                suite: self,
                footprint_blocks: 1 << 19,
                mean_gap: 8.0,
                streaming: 0.82,
                stride_blocks: 2,
                write_fraction: 0.17,
                hot_fraction: 0.25,
                hot_blocks: 1 << 9,
                warm_fraction: 0.0,
                warm_blocks: 48 * 1024,
                mpi_stall_fraction: 0.13,
            },
            Suite::Lulesh => SuiteParams {
                suite: self,
                footprint_blocks: 1 << 18,
                mean_gap: 9.0,
                streaming: 0.85,
                stride_blocks: 3,
                write_fraction: 0.20,
                hot_fraction: 0.30,
                hot_blocks: 1 << 9,
                warm_fraction: 0.0,
                warm_blocks: 48 * 1024,
                mpi_stall_fraction: 0.13,
            },
            Suite::Npb => SuiteParams {
                suite: self,
                footprint_blocks: 1 << 19,
                mean_gap: 8.0,
                streaming: 0.85,
                stride_blocks: 1,
                write_fraction: 0.15,
                hot_fraction: 0.28,
                hot_blocks: 1 << 9,
                warm_fraction: 0.0,
                warm_blocks: 48 * 1024,
                mpi_stall_fraction: 0.14,
            },
        }
    }
}

impl Suite {
    /// Per-node memory-capacity demand in gigabytes for a node with
    /// `cores` cores: real HPC deployments size ~2–4 GB per core on
    /// top of the simulated hot working set. The fleet configurator
    /// uses this as its capacity floor per workload.
    pub fn capacity_demand_gb(self, cores: usize) -> u32 {
        let per_core_gb = match self {
            // Dense linear algebra fills whatever memory it is given.
            Suite::Linpack => 4,
            // Graph analytics is capacity-hungry (large edge lists).
            Suite::Graph500 => 4,
            Suite::Hpcg | Suite::Coral2 => 3,
            Suite::Lulesh | Suite::Npb => 2,
        };
        (cores as u32) * per_core_gb
    }

    /// Relative memory intensity: memory operations per instruction
    /// (the reciprocal of the mean gap, counting the access itself).
    pub fn memory_intensity(self) -> f64 {
        1.0 / (1.0 + self.params().mean_gap)
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of a suite's synthetic access stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteParams {
    /// Which suite this models.
    pub suite: Suite,
    /// Per-core working set in 64-byte blocks.
    pub footprint_blocks: u64,
    /// Mean non-memory instructions between memory operations
    /// (memory intensity knob).
    pub mean_gap: f64,
    /// Probability the next cold access continues the current stream.
    pub streaming: f64,
    /// Stride (in blocks) of the streaming phase.
    pub stride_blocks: u64,
    /// Fraction of operations that are stores.
    pub write_fraction: f64,
    /// Fraction of accesses to a small cache-resident hot region.
    pub hot_fraction: f64,
    /// Size of the hot region in blocks.
    pub hot_blocks: u64,
    /// Fraction of accesses to a mid-size reuse region (blocked
    /// tiles, matrices revisited every sweep). It fits Hierarchy1's
    /// 4.5 MB/core cache budget but not Hierarchy2's 2.375 MB — the
    /// cache-sensitivity axis the paper's two hierarchies probe.
    pub warm_fraction: f64,
    /// Size of the warm region in blocks (~3 MB).
    pub warm_blocks: u64,
    /// Fraction of wall-time spent stalled in MPI communication
    /// (memory-speed-insensitive).
    pub mpi_stall_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_suites() {
        assert_eq!(Suite::ALL.len(), 6);
        let names: Vec<_> = Suite::ALL.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"Linpack"));
        assert!(names.contains(&"NPB"));
    }

    #[test]
    fn parameters_are_sane() {
        for suite in Suite::ALL {
            let p = suite.params();
            assert!(p.footprint_blocks > p.hot_blocks);
            assert!(p.mean_gap > 0.0);
            assert!((0.0..=1.0).contains(&p.streaming));
            assert!((0.0..=0.5).contains(&p.write_fraction));
            assert!((0.0..=1.0).contains(&p.hot_fraction));
            assert!((0.0..=0.5).contains(&p.mpi_stall_fraction));
            assert!(p.stride_blocks >= 1);
        }
    }

    #[test]
    fn graph500_is_most_irregular() {
        let g = Suite::Graph500.params();
        for suite in Suite::ALL {
            if suite != Suite::Graph500 {
                assert!(g.streaming < suite.params().streaming);
            }
        }
    }

    #[test]
    fn average_write_fraction_near_15_percent() {
        let avg: f64 = Suite::ALL
            .iter()
            .map(|s| s.params().write_fraction)
            .sum::<f64>()
            / 6.0;
        assert!((avg - 0.17).abs() < 0.05, "avg write fraction {avg}");
    }

    #[test]
    fn capacity_demand_scales_with_cores() {
        for suite in Suite::ALL {
            assert!(suite.capacity_demand_gb(8) >= 16);
            assert_eq!(
                suite.capacity_demand_gb(16),
                2 * suite.capacity_demand_gb(8)
            );
        }
        // The capacity-hungry suites outrank the compact ones.
        assert!(Suite::Graph500.capacity_demand_gb(8) > Suite::Lulesh.capacity_demand_gb(8));
    }

    #[test]
    fn memory_intensity_orders_suites() {
        // HPCG (gap 6) is the most memory-intensive, Graph500 (gap 16,
        // latency-bound) the least per instruction.
        let hpcg = Suite::Hpcg.memory_intensity();
        let graph = Suite::Graph500.memory_intensity();
        assert!(hpcg > graph);
        for suite in Suite::ALL {
            let i = suite.memory_intensity();
            assert!(i > 0.0 && i < 1.0, "{suite}: {i}");
        }
    }

    #[test]
    fn average_mpi_fraction_near_13_percent() {
        let avg: f64 = Suite::ALL
            .iter()
            .map(|s| s.params().mpi_stall_fraction)
            .sum::<f64>()
            / 6.0;
        assert!((avg - 0.13).abs() < 0.03, "avg MPI fraction {avg}");
    }
}
