//! Synthetic HPC workload traces for the Hetero-DMR reproduction.
//!
//! The paper evaluates six HPC benchmark suites — Linpack, HPCG,
//! Graph500, CORAL2, LULESH, and the NAS Parallel Benchmarks — under
//! MPI with small inputs. We cannot ship those codes, so each suite is
//! modelled as a parameterized memory-access generator
//! ([`suite::SuiteParams`]) capturing the characteristics that drive
//! the paper's results: memory intensity (compute gap between
//! operations), access pattern (streaming vs. irregular), footprint,
//! write fraction (Figure 15's ~15 % average), and the fraction of
//! time spent in MPI communication (~13 % of core-hours under
//! Hierarchy1), which does not speed up when memory does.
//!
//! [`utilization`] models the LANL job-level memory-utilization
//! dataset behind Figure 1 (3 × 10⁹ measurements, 7 × 10⁶
//! machine-hours): the fraction of jobs whose nodes all stay below
//! 25 % / 50 % memory utilization for the job's whole lifetime.

pub mod jobs;
pub mod phases;
pub mod recorded;
pub mod suite;
pub mod trace;
pub mod utilization;

pub use jobs::{JobSpec, JobStream, SyntheticJobs};
pub use phases::PhaseSchedule;
pub use recorded::{read_trace, write_trace};
pub use suite::{Suite, SuiteParams};
pub use trace::TraceGen;
pub use utilization::{Cluster, UtilizationModel};
