//! Cross-crate integration: the full pipeline from the module
//! population through the node model to the cluster simulation, with
//! the paper's qualitative orderings asserted at every stage.

use hetero_dmr::monte_carlo::MonteCarlo;
use hetero_dmr::{EvalConfig, MemoryDesign, NodeModel, UsageBucket};
use margin::composition::SelectionPolicy;
use margin::population::ModulePopulation;
use memsim::config::HierarchyConfig;
use scheduler::{
    Cluster, GrizzlyTrace, Policy, RunSummary, SchedulerConfig, SliceSource, SpeedupModel,
};
use workloads::utilization::{Cluster as Lanl, UtilizationModel};
use workloads::Suite;

fn small_model() -> NodeModel {
    NodeModel::new(
        HierarchyConfig::hierarchy1(),
        EvalConfig {
            ops_per_core: 5_000,
            seed: 0xE2E,
            windows: 1,
        },
    )
}

#[test]
fn characterization_feeds_monte_carlo_consistently() {
    // The population's 9-chips/rank margin statistics and the Monte
    // Carlo module distribution describe the same devices. The MC
    // draws 3200 MT/s modules, so exclude the down-binned labels
    // (their 4000 MT/s cap leaves room above 800 — Fig 4a).
    let pop = ModulePopulation::paper_study(1);
    let mc = MonteCarlo::default();
    let nine: Vec<f64> = pop
        .mainstream()
        .filter(|m| {
            m.spec.organization.chips_per_rank == 9
                && m.spec.organization.specified_rate.mts() == 3200
        })
        .map(|m| m.measured_margin_mts as f64)
        .collect();
    let pop_mean = margin::stats::mean(&nine);
    // Both are capped at 800; the MC mean parameter sits above the cap
    // by design, so compare the *observable* side.
    assert!(
        pop_mean > 600.0 && pop_mean <= 800.0,
        "population mean {pop_mean}"
    );
    let frac = mc.channel_fraction_at_least(SelectionPolicy::MarginUnaware, 800, 20_000, 9);
    let pop_frac = nine.iter().filter(|&&m| m >= 800.0).count() as f64 / nine.len() as f64;
    assert!(
        (frac - pop_frac).abs() < 0.15,
        "module-level P(>=800): MC {frac} vs population {pop_frac}"
    );
}

#[test]
fn node_level_orderings_hold() {
    let m = small_model();
    let b = UsageBucket::Low;
    let baseline = 1.0;
    let lat = m.suite_average(MemoryDesign::ExploitLatency, b);
    let freq = m.suite_average(MemoryDesign::ExploitFrequency, b);
    let both = m.suite_average(MemoryDesign::ExploitFreqLat, b);
    let hdmr8 = m.suite_average(MemoryDesign::HeteroDmr { margin_mts: 800 }, b);
    let hdmr6 = m.suite_average(MemoryDesign::HeteroDmr { margin_mts: 600 }, b);

    // The paper's qualitative structure:
    assert!(lat > baseline, "latency margin helps: {lat}");
    assert!(
        freq > lat,
        "frequency margin dominates latency margin: {freq} vs {lat}"
    );
    assert!(both >= freq, "both margins at least match frequency alone");
    assert!(hdmr8 > baseline, "Hetero-DMR beats the baseline: {hdmr8}");
    assert!(hdmr8 >= hdmr6 - 0.01, "more margin, more speedup");
    assert!(
        both > hdmr8,
        "the unprotected setting outruns the protected one"
    );
}

#[test]
fn usage_fallback_inherits_exactly_baseline_performance() {
    let m = small_model();
    for design in [
        MemoryDesign::Fmr,
        MemoryDesign::HeteroDmr { margin_mts: 800 },
        MemoryDesign::HeteroDmrFmr { margin_mts: 600 },
    ] {
        assert_eq!(
            m.normalized(design, Suite::Linpack, UsageBucket::High),
            1.0,
            "{design:?} must fall back above 50% utilization"
        );
    }
}

#[test]
fn monte_carlo_feeds_scheduler_and_orderings_hold() {
    let groups = MonteCarlo::default().node_groups(SelectionPolicy::MarginAware, 10_000, 2);
    let trace = GrizzlyTrace::scaled(3_000, 256).generate(3);
    let cluster_conv = Cluster::conventional(256);
    let cluster_hdmr = Cluster::new(256, [groups.at_800, groups.at_600, groups.at_0]);
    let speed = SpeedupModel::hetero_dmr_default();

    let run = |cluster: &Cluster, policy: Policy, speedups: &SpeedupModel| {
        let config = SchedulerConfig::builder()
            .policy(policy)
            .speedups(*speedups)
            .build()
            .expect("test tables are valid");
        cluster
            .schedule(SliceSource::new(&trace))
            .config(config)
            .run()
    };
    let base = RunSummary::from_outcomes(&run(
        &cluster_conv,
        Policy::Default,
        &SpeedupModel::conventional(),
    ));
    let aware = RunSummary::from_outcomes(&run(&cluster_hdmr, Policy::MarginAware, &speed));
    let unaware = RunSummary::from_outcomes(&run(&cluster_hdmr, Policy::Default, &speed));

    // Figure 17's structure: exec down, queueing down more, margin-
    // aware at least as good as the default scheduler.
    assert!(aware.mean_exec_s < base.mean_exec_s);
    assert!(aware.mean_turnaround_s < base.mean_turnaround_s);
    assert!(aware.turnaround_speedup_over(&base) > 1.0);
    assert!(
        aware.mean_turnaround_s <= unaware.mean_turnaround_s * 1.01,
        "margin-aware {} vs default {}",
        aware.mean_turnaround_s,
        unaware.mean_turnaround_s
    );
    // Queueing shrinks at least as fast as execution (the paper's
    // super-linear queueing effect).
    let (e, q, _) = aware.normalized_to(&base);
    assert!(
        q <= e + 0.02,
        "queueing {q} should improve at least as much as exec {e}"
    );
}

#[test]
fn utilization_weights_are_the_figure1_fractions() {
    let m = UtilizationModel::for_cluster(Lanl::Grizzly);
    let w = m.bucket_weights();
    assert!((w[0] + w[1] + w[2] - 1.0).abs() < 1e-12);
    assert!(w[0] > 0.5, "most jobs sit below 25% utilization");
    // And the node model consumes them directly:
    let model = small_model();
    let blended = model.usage_weighted(MemoryDesign::HeteroDmr { margin_mts: 800 }, w);
    let low = model.suite_average(
        MemoryDesign::HeteroDmr { margin_mts: 800 },
        UsageBucket::Low,
    );
    assert!(blended <= low && blended >= 1.0 - 0.05);
}

#[test]
fn energy_story_holds_end_to_end() {
    let m = small_model();
    let em = energy::EnergyModel::default();
    let mut better = 0;
    for suite in [Suite::Hpcg, Suite::Linpack, Suite::Npb] {
        let base = m.energy(MemoryDesign::CommercialBaseline, suite, &em);
        let hdmr = m.energy(MemoryDesign::HeteroDmr { margin_mts: 800 }, suite, &em);
        if hdmr.epi_nj() < base.epi_nj() {
            better += 1;
        }
        // DRAM stays a minority of system energy in both designs.
        assert!(base.dram_share() < 0.5);
        assert!(hdmr.dram_share() < 0.5);
    }
    assert!(
        better >= 2,
        "EPI should improve for most suites ({better}/3)"
    );
}
