//! Simulator invariants: properties that must hold for any
//! configuration — determinism, bus accounting, traffic conservation,
//! and monotonic responses to the knobs the paper varies.

use hetero_dmr::{EvalConfig, MemoryDesign, NodeModel, UsageBucket};
use memsim::config::{ChannelMode, HierarchyConfig};
use memsim::NodeSim;
use proptest::prelude::*;
use workloads::{Suite, TraceGen};

fn run_suite(mode: ChannelMode, suite: Suite, ops: usize, seed: u64) -> memsim::SimResult {
    let h = HierarchyConfig::hierarchy1();
    let mut node = NodeSim::new(h, mode);
    let streams: Vec<_> = (0..h.cores)
        .map(|i| TraceGen::new(suite.params(), seed + i as u64, ops))
        .collect();
    let warm = node.l3_blocks_per_core();
    for (i, s) in streams.iter().enumerate() {
        node.prewarm_core(i, s.warmup_blocks(warm, suite.params().write_fraction));
    }
    node.run(streams)
}

#[test]
fn simulation_is_bit_deterministic() {
    for design in [
        MemoryDesign::CommercialBaseline,
        MemoryDesign::HeteroDmr { margin_mts: 800 },
    ] {
        let a = run_suite(design.channel_mode(), Suite::Coral2, 2_000, 5);
        let b = run_suite(design.channel_mode(), Suite::Coral2, 2_000, 5);
        assert_eq!(a, b, "{design:?} must be deterministic");
    }
}

#[test]
fn bus_occupancy_never_exceeds_wall_time() {
    for suite in [Suite::Linpack, Suite::Graph500] {
        let r = run_suite(ChannelMode::commercial_baseline(), suite, 3_000, 7);
        assert!(
            r.controller.bus_busy_ps <= r.slowest_core_ps * r.channels as u64,
            "{suite}: bus busy {} vs wall time {}",
            r.controller.bus_busy_ps,
            r.slowest_core_ps
        );
        assert!(r.exec_time_ps <= r.slowest_core_ps, "mean <= max");
        // Each burst moved 64 bytes: busy time and byte counts agree.
        let bursts = r.controller.reads + r.controller.writes;
        assert!(r.controller.bus_busy_ps >= bursts * 2_000); // ≥ fastest burst
        assert!(r.controller.bus_busy_ps <= bursts * 2_500 + 1); // ≤ slowest burst
    }
}

#[test]
fn row_hits_bounded_by_accesses_and_activates_cover_misses() {
    let r = run_suite(ChannelMode::commercial_baseline(), Suite::Npb, 3_000, 11);
    let accesses = r.controller.reads + r.controller.writes;
    assert!(r.controller.row_hits <= accesses);
    // Every non-hit column access requires an activation (plus
    // background ones from refresh/shadow effects).
    assert!(r.controller.activates + r.controller.row_hits >= accesses);
}

#[test]
fn demand_misses_match_dram_reads_minus_prefetch() {
    let r = run_suite(ChannelMode::commercial_baseline(), Suite::Hpcg, 3_000, 13);
    // Demand misses are a lower bound on DRAM reads (prefetches and
    // store RFOs add on top); wbcache hits subtract.
    assert!(
        r.controller.reads + r.controller.wb_cache_hits >= r.cache_misses,
        "reads {} + wb hits {} vs misses {}",
        r.controller.reads,
        r.controller.wb_cache_hits,
        r.cache_misses
    );
}

#[test]
fn instructions_accounted_exactly() {
    let ops = 2_500usize;
    let h = HierarchyConfig::hierarchy1();
    let streams: Vec<Vec<_>> = (0..h.cores)
        .map(|i| TraceGen::new(Suite::Lulesh.params(), 100 + i as u64, ops).collect())
        .collect();
    let expected: u64 = streams
        .iter()
        .flatten()
        .map(|op| op.gap_instructions as u64 + 1)
        .sum();
    let mut node = NodeSim::new(h, ChannelMode::commercial_baseline());
    let r = node.run(streams.into_iter().map(Vec::into_iter).collect());
    assert_eq!(r.instructions, expected);
}

#[test]
fn node_model_cache_is_coherent_with_fresh_runs() {
    let m = NodeModel::new(
        HierarchyConfig::hierarchy1(),
        EvalConfig {
            ops_per_core: 2_000,
            seed: 3,
            windows: 1,
        },
    );
    let first = m.run(MemoryDesign::Fmr, Suite::Npb);
    let second = m.run(MemoryDesign::Fmr, Suite::Npb);
    assert_eq!(first, second);
    // A distinct engine reproduces the same numbers.
    let m2 = NodeModel::new(
        HierarchyConfig::hierarchy1(),
        EvalConfig {
            ops_per_core: 2_000,
            seed: 3,
            windows: 1,
        },
    );
    assert_eq!(m2.run(MemoryDesign::Fmr, Suite::Npb), first);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Raising only the data rate never slows a run down.
    #[test]
    fn more_data_rate_never_hurts(extra in prop_oneof![Just(0u32), Just(400), Just(800)]) {
        let faster = dram::timing::MemorySetting::Specified
            .timing()
            .at_rate(dram::rate::DataRate::MT3200.plus_margin(extra));
        let mode = ChannelMode::builder()
            .timings(faster)
            .build()
            .expect("uniform overclock is a valid mode");
        let base = run_suite(ChannelMode::commercial_baseline(), Suite::Hpcg, 2_000, 21);
        let fast = run_suite(mode, Suite::Hpcg, 2_000, 21);
        prop_assert!(fast.exec_time_ps <= base.exec_time_ps * 101 / 100,
            "rate +{} MT/s slowed the run: {} vs {}", extra, fast.exec_time_ps, base.exec_time_ps);
    }

    /// Usage-bucket weighting is a convex combination: the blended
    /// number never exceeds the best bucket or undercuts the worst.
    #[test]
    fn usage_weighting_is_convex(w0 in 0.0f64..1.0, w1 in 0.0f64..1.0) {
        let total = w0 + w1;
        prop_assume!(total < 1.0);
        let weights = [w0, w1, 1.0 - total];
        let m = NodeModel::new(
            HierarchyConfig::hierarchy1(),
            EvalConfig { ops_per_core: 1_500, seed: 9, windows: 1 },
        );
        let design = MemoryDesign::HeteroDmr { margin_mts: 800 };
        let per_bucket: Vec<f64> = UsageBucket::ALL
            .iter()
            .map(|&b| m.suite_average(design, b))
            .collect();
        let blended = m.usage_weighted(design, weights);
        let lo = per_bucket.iter().cloned().fold(f64::MAX, f64::min);
        let hi = per_bucket.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(blended >= lo - 1e-9 && blended <= hi + 1e-9);
    }
}
