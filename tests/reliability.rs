//! Property-based reliability tests: the paper's central claim —
//! *whatever* corrupts the unsafely fast copies, reads return written
//! data — exercised with randomized operation sequences and error
//! models, plus the ECC code's algebraic guarantees.

use ecc::bamboo::{BlockCodec, DetectOutcome};
use ecc::rs::ReedSolomon;
use ecc::ErrorModel;
use hetero_dmr::governor::{EpochGovernor, GovernorState, EPOCH_PS};
use hetero_dmr::protocol::{HeteroDmrChannel, OpMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// One step of a randomized protocol workload.
#[derive(Debug, Clone)]
enum Op {
    Write {
        block: u64,
        tag: u8,
    },
    Read {
        block: u64,
        inject: Option<ErrorModel>,
    },
    WriteMode,
    ReadMode,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let model = prop_oneof![
        Just(None),
        Just(Some(ErrorModel::SingleBit)),
        Just(Some(ErrorModel::SingleByte)),
        Just(Some(ErrorModel::ByteBurst(4))),
        Just(Some(ErrorModel::ByteBurst(12))),
        Just(Some(ErrorModel::FullBlock)),
        Just(Some(ErrorModel::WrongAddress)),
    ];
    prop_oneof![
        (0u64..64, any::<u8>()).prop_map(|(block, tag)| Op::Write { block, tag }),
        (0u64..64, model).prop_map(|(block, inject)| Op::Read { block, inject }),
        Just(Op::WriteMode),
        Just(Op::ReadMode),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of writes, mode switches, and error-injected
    /// reads returns exactly the data a reference map holds.
    #[test]
    fn protocol_always_returns_written_data(ops in proptest::collection::vec(op_strategy(), 1..120), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut channel = HeteroDmrChannel::new(1 << 12);
        let mut reference: HashMap<u64, u8> = HashMap::new();
        let mut t = channel.set_used_blocks(1 << 10, 0);

        for op in ops {
            match op {
                Op::Write { block, tag } => {
                    if channel.mode() == OpMode::ReadMode {
                        t = channel.begin_write_mode(t).unwrap();
                    }
                    channel.write(block, &[tag; 64], t).unwrap();
                    reference.insert(block, tag);
                }
                Op::Read { block, inject } => {
                    let result = match inject {
                        Some(model) => channel.read(block, t, Some((&mut rng, model))),
                        None => channel.read::<StdRng>(block, t, None),
                    };
                    let (data, _outcome, end) = result.unwrap();
                    t = end;
                    let expected = reference.get(&block).copied().unwrap_or(0);
                    prop_assert_eq!(data, [expected; 64], "block {} corrupted", block);
                }
                Op::WriteMode => {
                    if channel.mode() == OpMode::ReadMode {
                        t = channel.begin_write_mode(t).unwrap();
                    }
                }
                Op::ReadMode => {
                    if channel.mode() == OpMode::WriteMode {
                        t = channel.begin_read_mode(t).unwrap();
                    }
                }
            }
        }
    }

    /// RS-8 corrects any ≤4-symbol error and detection-only flags any
    /// ≤8-symbol error, at arbitrary positions and magnitudes.
    #[test]
    fn rs8_guarantees(
        data in proptest::array::uniform32(any::<u8>()),
        flips in proptest::collection::btree_map(0usize..40, 1u8..=255, 1..=8)
    ) {
        let rs = ReedSolomon::new(8);
        let mut message = data.to_vec();
        message.extend_from_slice(&data); // 64 bytes
        let parity = rs.parity_of(&message);

        let mut m = message.clone();
        let mut p = parity.clone();
        for (&pos, &mask) in &flips {
            if pos < 64 { m[pos] ^= mask; } else { p[pos - 64] ^= mask; }
        }
        // Detection-only: always flagged (min distance 9).
        prop_assert!(rs.detect(&m, &p));
        // Detect+correct: restores the word whenever ≤4 symbols broke.
        if flips.len() <= 4 {
            let fixed = rs.correct(&mut m, &mut p);
            prop_assert_eq!(fixed, Ok(flips.len()));
            prop_assert_eq!(m, message);
            prop_assert_eq!(p, parity);
        }
    }

    /// Address incorporation: a block returned from the wrong address
    /// is always detected, for arbitrary addresses.
    #[test]
    fn address_mismatch_always_detected(addr in any::<u64>(), delta in 1u64..1_000_000, data in any::<[u8; 32]>()) {
        let codec = BlockCodec::new();
        let mut full = [0u8; 64];
        full[..32].copy_from_slice(&data);
        let block = codec.encode(addr, &full);
        let other = addr.wrapping_add(delta * 64);
        prop_assert_eq!(codec.detect(other, &block), DetectOutcome::Detected);
        prop_assert_eq!(codec.detect(addr, &block), DetectOutcome::Clean);
    }

    /// The governor never exploits past its budget within an epoch and
    /// always resumes in a later epoch.
    #[test]
    fn governor_budget_invariants(threshold in 1u64..1000, errors in 1u64..2000, spacing in 1u64..1_000_000) {
        let mut g = EpochGovernor::new(threshold);
        let mut trips = 0u64;
        for i in 0..errors {
            let now = i * spacing; // all within epoch 0 for these ranges
            let state = g.record_error(now);
            if g.errors_this_epoch() >= threshold {
                prop_assert_eq!(state, GovernorState::FallBack);
                trips += 1;
            } else {
                prop_assert_eq!(state, GovernorState::Exploiting);
            }
        }
        prop_assert_eq!(g.total_errors(), errors);
        if errors >= threshold {
            prop_assert!(trips > 0);
            // The next epoch always starts clean.
            prop_assert_eq!(g.state(EPOCH_PS * 2), GovernorState::Exploiting);
        }
    }
}

/// Deterministic sweep: detection-only decode catches 100 % of a large
/// randomized corruption campaign across all classes (the 2⁻⁶⁴ escape
/// probability is unobservable at any test scale).
#[test]
fn detection_never_misses_in_campaign() {
    let codec = BlockCodec::new();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let data = [0x42u8; 64];
    let clean = codec.encode(0x8000, &data);
    let mut detected = 0u32;
    let mut injected = 0u32;
    for model in ErrorModel::ALL {
        for _ in 0..2_000 {
            let mut block = clean;
            let inj = ecc::inject(&mut rng, model, 0x8000, &mut block);
            let effective = if inj.effective_address != 0x8000 {
                codec.encode(inj.effective_address, &data)
            } else {
                block
            };
            if effective == clean {
                continue; // injection coincided with the original
            }
            injected += 1;
            if codec.detect(0x8000, &effective) == DetectOutcome::Detected {
                detected += 1;
            }
        }
    }
    assert_eq!(
        detected, injected,
        "an injected corruption escaped detection"
    );
    assert!(injected > 9_000);
}
